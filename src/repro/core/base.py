"""Shared interface of all posted price mechanisms.

Every pricer in this package — the ellipsoid pricers of Algorithms 1/2, the
one-dimensional bisection pricer, and the baselines — exposes the same two-step
protocol used by the online market simulator:

1. :meth:`PostedPriceMechanism.propose` receives the query's (link-space)
   feature vector and reserve price and returns a :class:`PricingDecision`;
2. :meth:`PostedPriceMechanism.update` receives the same decision together with
   the consumer's accept/reject feedback and refines the pricer's state.

All quantities live in the *link space* of the market value model (see
:mod:`repro.core.models`); for the fundamental linear model the link space and
the real price space coincide.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.utils.memory import PricerMemoryReport, report_for_arrays


@dataclass
class BatchDecisions:
    """Struct-of-arrays outcome of one :meth:`PostedPriceMechanism.propose_batch`.

    The columnar analogue of a sequence of :class:`PricingDecision` objects,
    restricted to the fields the simulation engine consumes.

    Attributes
    ----------
    link_prices:
        Posted link-space prices, shape ``(rounds,)``; ``NaN`` marks a skipped
        round (no price posted).
    exploratory:
        Whether each price was the exploratory (midpoint-based) price.
    skipped:
        Whether the pricer declined to post in each round.
    """

    link_prices: np.ndarray
    exploratory: np.ndarray
    skipped: np.ndarray

    def __post_init__(self) -> None:
        self.link_prices = np.asarray(self.link_prices, dtype=float)
        self.exploratory = np.asarray(self.exploratory, dtype=bool)
        self.skipped = np.asarray(self.skipped, dtype=bool)
        if not (self.link_prices.shape == self.exploratory.shape == self.skipped.shape):
            raise ValueError("BatchDecisions columns must share one shape")

    @property
    def rounds(self) -> int:
        """Number of decided rounds."""
        return self.link_prices.shape[0]

    def to_decisions(
        self, features: np.ndarray, reserves: np.ndarray, start_index: int
    ) -> "list":
        """Expand the columnar decisions into object-level :class:`PricingDecision`\\ s.

        The engine discards decision objects on its batched paths, but the
        serving layer needs one per quote to route asynchronous accept/reject
        feedback back through :meth:`PostedPriceMechanism.update`.  Only
        stateless pricers produce :class:`BatchDecisions` (the
        ``supports_batch_propose`` contract), so the bounds are the ±∞ they
        report from :meth:`propose` as well; ``start_index`` is the pricer's
        ``rounds_seen`` *before* the ``propose_batch`` call, matching the
        ``round_index`` sequence the object protocol would have assigned.
        """
        features = np.asarray(features, dtype=float)
        reserves = np.asarray(reserves, dtype=float)
        if features.shape[0] != self.rounds or reserves.shape[0] != self.rounds:
            raise ValueError(
                "expected %d feature rows / reserves, got %d / %d"
                % (self.rounds, features.shape[0], reserves.shape[0])
            )
        decisions = []
        for index in range(self.rounds):
            price = self.link_prices[index]
            reserve = reserves[index]
            decisions.append(
                PricingDecision(
                    features=features[index],
                    reserve=None if np.isnan(reserve) else float(reserve),
                    lower_bound=float("-inf"),
                    upper_bound=float("inf"),
                    price=None if np.isnan(price) else float(price),
                    exploratory=bool(self.exploratory[index]),
                    skipped=bool(self.skipped[index]),
                    round_index=int(start_index) + index,
                )
            )
        return decisions


@dataclass
class PricingDecision:
    """The outcome of one call to :meth:`PostedPriceMechanism.propose`.

    Attributes
    ----------
    features:
        The (link-space) feature vector ``φ(x_t)`` the decision was made for.
    reserve:
        The reserve price in link space, or ``None`` when the pricer ignores
        reserve prices (the starred algorithm versions).
    lower_bound / upper_bound:
        The pricer's bounds ``p̲_t`` / ``p̄_t`` on the link-space market value.
        Baselines that do not track bounds report ``-inf`` / ``+inf``.
    price:
        The posted link-space price, or ``None`` when the round is skipped.
    exploratory:
        Whether the price is the exploratory price (midpoint-based) rather
        than the conservative price.
    skipped:
        ``True`` when the pricer declines to post (certain no-deal because the
        reserve price exceeds the maximum possible market value).
    round_index:
        Sequential index assigned by the pricer (0-based).
    """

    features: np.ndarray
    reserve: Optional[float]
    lower_bound: float
    upper_bound: float
    price: Optional[float]
    exploratory: bool
    skipped: bool
    round_index: int
    metadata: dict = field(default_factory=dict)

    @property
    def width(self) -> float:
        """Width ``p̄_t - p̲_t`` of the value bounds."""
        return self.upper_bound - self.lower_bound

    @property
    def posted(self) -> bool:
        """Whether a price was actually posted this round."""
        return not self.skipped and self.price is not None


class PostedPriceMechanism(abc.ABC):
    """Abstract posted price mechanism (seller side of one data trading round)."""

    #: Human-readable name used in experiment reports.
    name: str = "posted-price-mechanism"

    def __init__(self) -> None:
        self._round_index = 0

    @property
    def rounds_seen(self) -> int:
        """Number of propose() calls so far."""
        return self._round_index

    @abc.abstractmethod
    def propose(self, features, reserve: Optional[float] = None) -> PricingDecision:
        """Choose a posted price for the query with link-space features ``features``."""

    @abc.abstractmethod
    def update(self, decision: PricingDecision, accepted: bool) -> None:
        """Incorporate the consumer's accept/reject feedback for ``decision``."""

    # ------------------------------------------------------------------ #
    # Batched protocol (optional fast paths; the engine falls back to a
    # sequential propose/update loop when neither hook is provided).
    # ------------------------------------------------------------------ #

    #: Whether :meth:`propose_batch` is available.  Only pricers whose
    #: proposals never depend on accept/reject feedback (the stateless
    #: baselines) may set this — a feedback-dependent pricer cannot commit to
    #: a whole horizon of prices up front.
    supports_batch_propose: bool = False

    def propose_batch(self, features: np.ndarray, reserves: np.ndarray) -> BatchDecisions:
        """Propose prices for a whole horizon at once.

        Parameters
        ----------
        features:
            Link-space feature matrix ``φ(x_t)``, shape ``(rounds, n)``.
        reserves:
            Link-space reserve prices, shape ``(rounds,)``; ``NaN`` encodes
            "no reserve this round" (the ``reserve=None`` case of
            :meth:`propose`).

        Must be element-wise identical to calling :meth:`propose` round by
        round, and must advance :attr:`rounds_seen` by ``rounds``.
        """
        raise NotImplementedError(
            "%s does not implement propose_batch" % type(self).__name__
        )

    def update_batch(self, decisions: BatchDecisions, accepted: np.ndarray) -> None:
        """Incorporate a whole horizon of accept/reject feedback.

        The default is a no-op, which is correct exactly for the stateless
        pricers that set :attr:`supports_batch_propose`; learning pricers
        either run through the engine's sequential fallback or provide
        :meth:`run_batch`.
        """

    def run_batch(self, model, materialized, transcript, backend=None) -> bool:
        """Optionally run a whole horizon with a pricer-specific fast path.

        Parameters
        ----------
        model:
            The :class:`repro.core.models.MarketValueModel` of the market (the
            feedback loop needs its ``link`` to translate link-space prices
            into real posted prices).
        materialized:
            A :class:`repro.engine.arrivals.MaterializedArrivals` (duck-typed;
            this module does not import the engine).
        transcript:
            A :class:`repro.engine.transcript.Transcript` whose decision
            columns (``link_prices``, ``posted_prices``, ``sold``, ``skipped``,
            ``exploratory``) the pricer must fill for every round.
        backend:
            Math-backend selector.  ``None`` / ``"reference"`` require the
            bit-exact tier: the implementation must be element-wise identical
            to the sequential propose/update loop, including internal
            counters.  A relaxed-tier backend name (``"batched"``,
            ``"batched-torch"``; see :mod:`repro.engine.equivalence`) permits
            implementations that round differently but agree under the
            relaxed tolerance policies.  Pricers without a matching fast path
            ignore the knob and fall back to their reference behaviour.

        Returns ``True`` when the pricer handled the run, or ``False`` to
        request the engine's generic loop fallback.
        """
        return False

    def advance_rounds(self, count: int) -> None:
        """Advance the internal round counter after a batched run."""
        if count < 0:
            raise ValueError("count must be non-negative, got %d" % count)
        self._round_index += count

    def state_arrays(self) -> Tuple[np.ndarray, ...]:
        """Arrays making up the pricer's state (for memory accounting)."""
        return ()

    def memory_report(self) -> PricerMemoryReport:
        """Memory footprint of this pricer (Section V-D style accounting)."""
        return report_for_arrays(self.state_arrays())

    # ------------------------------------------------------------------ #
    # Checkpoint / restore protocol
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """A complete snapshot of the pricer's mutable state.

        The contract is *exact resumability*: for any round boundary ``k``,
        running rounds ``[0, k)``, snapshotting, loading the snapshot into a
        freshly constructed pricer (same constructor arguments), and running
        rounds ``[k, T)`` must produce decisions bit-identical to an
        uninterrupted run.  The snapshot therefore covers the round counter,
        the knowledge-set / learner state, all bookkeeping counters, and —
        for pricers that carry a random source in an ``rng`` attribute — the
        RNG position.

        The returned mapping contains only JSON-compatible scalars, nested
        dicts/lists, and ``numpy.ndarray`` leaves, so it can be persisted by
        :mod:`repro.engine.checkpoint` without pickling.
        """
        state: dict = {"round_index": int(self._round_index)}
        rng = getattr(self, "rng", None)
        if isinstance(rng, np.random.Generator):
            state["rng_state"] = rng.bit_generator.state
        state.update(self._extra_state())
        return state

    def load_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`.

        The pricer must have been constructed with the same configuration as
        the one that produced the snapshot; ``load_state`` replaces only the
        mutable state.
        """
        self._round_index = int(state["round_index"])
        rng_state = state.get("rng_state")
        if rng_state is not None:
            rng = getattr(self, "rng", None)
            if not isinstance(rng, np.random.Generator):
                raise ValueError(
                    "checkpoint carries an RNG position but %s has no rng attribute"
                    % type(self).__name__
                )
            rng.bit_generator.state = rng_state
        self._load_extra_state(state)

    def _extra_state(self) -> dict:
        """Subclass hook: additional entries for :meth:`state_dict`."""
        return {}

    def _load_extra_state(self, state: dict) -> None:
        """Subclass hook: restore the entries produced by :meth:`_extra_state`."""

    def _next_round(self) -> int:
        index = self._round_index
        self._round_index += 1
        return index


class KnowledgePricerStateMixin:
    """Snapshot plumbing shared by the knowledge-set pricers.

    The ellipsoid and one-dimensional pricers carry exactly the same mutable
    extras — a ``knowledge`` set plus the four bookkeeping counters — so the
    snapshot hooks live here once; a counter added to one family's snapshot
    cannot silently miss the other.
    """

    def _extra_state(self) -> dict:
        return {
            "exploratory_rounds": int(self.exploratory_rounds),
            "conservative_rounds": int(self.conservative_rounds),
            "skipped_rounds": int(self.skipped_rounds),
            "cuts_applied": int(self.cuts_applied),
            "knowledge": self.knowledge.state_dict(),
        }

    def _load_extra_state(self, state: dict) -> None:
        self.exploratory_rounds = int(state["exploratory_rounds"])
        self.conservative_rounds = int(state["conservative_rounds"])
        self.skipped_rounds = int(state["skipped_rounds"])
        self.cuts_applied = int(state["cuts_applied"])
        self.knowledge.load_state(state["knowledge"])
