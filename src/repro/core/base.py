"""Shared interface of all posted price mechanisms.

Every pricer in this package — the ellipsoid pricers of Algorithms 1/2, the
one-dimensional bisection pricer, and the baselines — exposes the same two-step
protocol used by the online market simulator:

1. :meth:`PostedPriceMechanism.propose` receives the query's (link-space)
   feature vector and reserve price and returns a :class:`PricingDecision`;
2. :meth:`PostedPriceMechanism.update` receives the same decision together with
   the consumer's accept/reject feedback and refines the pricer's state.

All quantities live in the *link space* of the market value model (see
:mod:`repro.core.models`); for the fundamental linear model the link space and
the real price space coincide.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.utils.memory import PricerMemoryReport, report_for_arrays


@dataclass
class PricingDecision:
    """The outcome of one call to :meth:`PostedPriceMechanism.propose`.

    Attributes
    ----------
    features:
        The (link-space) feature vector ``φ(x_t)`` the decision was made for.
    reserve:
        The reserve price in link space, or ``None`` when the pricer ignores
        reserve prices (the starred algorithm versions).
    lower_bound / upper_bound:
        The pricer's bounds ``p̲_t`` / ``p̄_t`` on the link-space market value.
        Baselines that do not track bounds report ``-inf`` / ``+inf``.
    price:
        The posted link-space price, or ``None`` when the round is skipped.
    exploratory:
        Whether the price is the exploratory price (midpoint-based) rather
        than the conservative price.
    skipped:
        ``True`` when the pricer declines to post (certain no-deal because the
        reserve price exceeds the maximum possible market value).
    round_index:
        Sequential index assigned by the pricer (0-based).
    """

    features: np.ndarray
    reserve: Optional[float]
    lower_bound: float
    upper_bound: float
    price: Optional[float]
    exploratory: bool
    skipped: bool
    round_index: int
    metadata: dict = field(default_factory=dict)

    @property
    def width(self) -> float:
        """Width ``p̄_t - p̲_t`` of the value bounds."""
        return self.upper_bound - self.lower_bound

    @property
    def posted(self) -> bool:
        """Whether a price was actually posted this round."""
        return not self.skipped and self.price is not None


class PostedPriceMechanism(abc.ABC):
    """Abstract posted price mechanism (seller side of one data trading round)."""

    #: Human-readable name used in experiment reports.
    name: str = "posted-price-mechanism"

    def __init__(self) -> None:
        self._round_index = 0

    @property
    def rounds_seen(self) -> int:
        """Number of propose() calls so far."""
        return self._round_index

    @abc.abstractmethod
    def propose(self, features, reserve: Optional[float] = None) -> PricingDecision:
        """Choose a posted price for the query with link-space features ``features``."""

    @abc.abstractmethod
    def update(self, decision: PricingDecision, accepted: bool) -> None:
        """Incorporate the consumer's accept/reject feedback for ``decision``."""

    def state_arrays(self) -> Tuple[np.ndarray, ...]:
        """Arrays making up the pricer's state (for memory accounting)."""
        return ()

    def memory_report(self) -> PricerMemoryReport:
        """Memory footprint of this pricer (Section V-D style accounting)."""
        return report_for_arrays(self.state_arrays())

    def _next_round(self) -> int:
        index = self._round_index
        self._round_index += 1
        return index
