"""Ellipsoid based posted price mechanisms (Algorithms 1, 1*, 2, 2*).

A single implementation, :class:`EllipsoidPricer`, covers all four algorithm
versions evaluated in the paper:

==============================  ==========================  =================
Paper name                      ``use_reserve``             ``delta``
==============================  ==========================  =================
Algorithm 1  (with reserve)     ``True``                    ``0``
Algorithm 1* (pure version)     ``False``                   ``0``
Algorithm 2  (reserve + unc.)   ``True``                    ``> 0``
Algorithm 2* (with uncertainty) ``False``                   ``> 0``
==============================  ==========================  =================

Setting ``delta = 0`` reduces Algorithm 2 exactly to Algorithm 1 (the skip
condition, the exploratory/conservative prices, and the cut positions all
coincide), so the uncertainty-aware pseudo-code is the one implemented.

The knowledge set defaults to the Löwner–John ellipsoid representation; the
exact polytope representation can be selected for validation at the cost of
two linear programs per round (``knowledge='polytope'``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.base import KnowledgePricerStateMixin, PostedPriceMechanism, PricingDecision
from repro.core.ellipsoid import _DEGENERATE_GAIN, Ellipsoid
from repro.core.knowledge import EllipsoidKnowledge, KnowledgeSet, PolytopeKnowledge
from repro.utils.validation import ensure_finite_scalar, ensure_positive, ensure_vector

_NEGATIVE_INFINITY = float("-inf")


@dataclass(frozen=True)
class PricerConfig:
    """Configuration of an :class:`EllipsoidPricer`.

    Attributes
    ----------
    dimension:
        Dimension ``n`` of the (link-space) feature vector.
    radius:
        Radius ``R`` of the initial ball-shaped knowledge set ``E_1``.
    epsilon:
        The exploration threshold ``ε``: when the width of the value bounds
        exceeds ``ε`` the exploratory price is posted.  The paper's theory
        suggests ``ε = max(n²/T, 4nδ)``; see :meth:`theoretical_epsilon`.
    delta:
        The uncertainty buffer ``δ`` (0 for the deterministic Algorithms 1/1*).
    use_reserve:
        Whether the reserve price constraint is enforced (Algorithms 1/2) or
        ignored (the starred versions).
    allow_conservative_cuts:
        Ablation switch for Lemma 8: when true the pricer also refines its
        knowledge set after conservative-price rounds, which the paper shows
        enables an adversary to force Ω(T) regret.
    knowledge:
        ``'ellipsoid'`` (default) or ``'polytope'`` for the exact LP-based
        reference representation.
    """

    dimension: int
    radius: float
    epsilon: float
    delta: float = 0.0
    use_reserve: bool = True
    allow_conservative_cuts: bool = False
    knowledge: str = "ellipsoid"

    def __post_init__(self) -> None:
        if self.dimension < 1:
            raise ValueError("dimension must be at least 1, got %d" % self.dimension)
        ensure_positive(self.radius, name="radius")
        ensure_positive(self.epsilon, name="epsilon")
        ensure_positive(self.delta, name="delta", strict=False)
        if self.knowledge not in ("ellipsoid", "polytope"):
            raise ValueError("knowledge must be 'ellipsoid' or 'polytope', got %r" % self.knowledge)

    @staticmethod
    def theoretical_epsilon(dimension: int, total_rounds: int, delta: float = 0.0) -> float:
        """The threshold used in the paper's analysis and evaluation.

        ``ε = log²(T)/T`` in the one-dimensional case (Theorem 3) and
        ``ε = max(n²/T, 4nδ)`` otherwise (Theorem 1).
        """
        if total_rounds < 1:
            raise ValueError("total_rounds must be at least 1, got %d" % total_rounds)
        if dimension == 1:
            if total_rounds == 1:
                return 1.0
            return max(math.log(total_rounds) ** 2 / total_rounds, 4.0 * delta, 1e-12)
        return max(dimension**2 / total_rounds, 4.0 * dimension * delta, 1e-12)


class EllipsoidPricer(KnowledgePricerStateMixin, PostedPriceMechanism):
    """The paper's contextual dynamic pricing mechanism with reserve price.

    Parameters
    ----------
    config:
        A :class:`PricerConfig`.  The pricer operates in link space: callers
        supply ``φ(x_t)`` feature vectors and link-space reserve prices, and
        receive link-space posted prices (see :mod:`repro.core.models` and
        :class:`repro.core.simulation.MarketSimulator` for the translation to
        real prices under non-linear models).
    """

    def __init__(self, config: PricerConfig, initial_ellipsoid=None) -> None:
        super().__init__()
        if config.dimension < 2:
            raise ValueError(
                "EllipsoidPricer requires dimension >= 2; "
                "use OneDimensionalPricer (or make_pricer) for n = 1"
            )
        self.config = config
        self.knowledge: KnowledgeSet
        if initial_ellipsoid is not None:
            # Warm start: the broker begins from an explicit knowledge
            # ellipsoid (e.g. fitted on historical transactions) instead of
            # the origin-centered ball of radius R.
            if config.knowledge != "ellipsoid":
                raise ValueError("an initial ellipsoid requires knowledge='ellipsoid'")
            if initial_ellipsoid.dimension != config.dimension:
                raise ValueError(
                    "initial ellipsoid dimension %d does not match config dimension %d"
                    % (initial_ellipsoid.dimension, config.dimension)
                )
            self.knowledge = EllipsoidKnowledge(initial_ellipsoid.copy())
        elif config.knowledge == "ellipsoid":
            self.knowledge = EllipsoidKnowledge.from_radius(config.dimension, config.radius)
        else:
            self.knowledge = PolytopeKnowledge.from_radius(config.dimension, config.radius)
        self.exploratory_rounds = 0
        self.conservative_rounds = 0
        self.skipped_rounds = 0
        self.cuts_applied = 0
        self.name = self._derive_name()

    def _derive_name(self) -> str:
        if self.config.use_reserve and self.config.delta > 0:
            return "with reserve price and uncertainty"
        if self.config.use_reserve:
            return "with reserve price"
        if self.config.delta > 0:
            return "with uncertainty"
        return "pure version"

    # ------------------------------------------------------------------ #
    # Posted price mechanism interface
    # ------------------------------------------------------------------ #

    def propose(self, features, reserve: Optional[float] = None) -> PricingDecision:
        """Lines 2–13 / 22–27 of Algorithms 1 and 2: choose the posted price."""
        features = ensure_vector(features, dimension=self.config.dimension, name="features")
        effective_reserve = self._effective_reserve(reserve)
        lower, upper = self.knowledge.value_bounds(features)
        delta = self.config.delta

        if effective_reserve >= upper + delta:
            # Certain no deal: any admissible price exceeds the maximum
            # possible market value (Lines 8-10).
            self.skipped_rounds += 1
            self._next_round()
            return PricingDecision(
                features=features,
                reserve=reserve if self.config.use_reserve else None,
                lower_bound=lower,
                upper_bound=upper,
                price=None,
                exploratory=False,
                skipped=True,
                round_index=self.rounds_seen - 1,
            )

        width = upper - lower
        if width > self.config.epsilon:
            price = max(effective_reserve, 0.5 * (lower + upper))
            exploratory = True
            self.exploratory_rounds += 1
        else:
            price = max(effective_reserve, lower - delta)
            exploratory = False
            self.conservative_rounds += 1

        self._next_round()
        return PricingDecision(
            features=features,
            reserve=reserve if self.config.use_reserve else None,
            lower_bound=lower,
            upper_bound=upper,
            price=price,
            exploratory=exploratory,
            skipped=False,
            round_index=self.rounds_seen - 1,
        )

    def update(self, decision: PricingDecision, accepted: bool) -> None:
        """Lines 14–21 of Algorithms 1 and 2: refine the knowledge set."""
        if decision.skipped or decision.price is None:
            return
        refine = decision.exploratory or self.config.allow_conservative_cuts
        if not refine:
            # Conservative prices never refine the knowledge set (Line 24);
            # Lemma 8 shows that allowing them to would admit Ω(T) regret.
            return
        if decision.width <= 1e-12:
            # The knowledge set carries (numerically) no width along this
            # direction, so the feedback contains no refinable information and
            # the rank-one update would be degenerate.
            return
        delta = self.config.delta
        if accepted:
            # Acceptance implies price <= v <= φ(x)^T θ* + δ, i.e. the
            # effective price (price - δ) lower-bounds φ(x)^T θ*.
            changed = self.knowledge.cut(decision.features, decision.price - delta, keep="geq")
        else:
            # Rejection implies price >= v >= φ(x)^T θ* - δ.
            changed = self.knowledge.cut(decision.features, decision.price + delta, keep="leq")
        if changed:
            self.cuts_applied += 1

    # ------------------------------------------------------------------ #
    # Columnar engine fast path
    # ------------------------------------------------------------------ #

    def run_batch(self, model, materialized, transcript, backend=None) -> bool:
        """Run a whole horizon with the per-round arithmetic of propose/update.

        With ``backend=None`` (or ``"reference"``) the loop body performs
        exactly the floating-point operations of :meth:`propose` (the support
        interval ``x^T c ± sqrt(x^T A x)``) and :meth:`update` (the
        Löwner–John cut), in the same order — only the per-round input
        validation and :class:`PricingDecision` allocation are elided — so
        seeded transcripts are bit-identical to the sequential loop.  Internal
        counters (`exploratory_rounds`, `cuts_applied`, ...) are maintained
        exactly as in the sequential path.

        With a relaxed-tier ``backend`` (``"batched"``, ``"batched-torch"``)
        the run is block-vectorised through the backend's stacked primitives
        (:mod:`repro.core.batched_ellipsoid`): the knowledge ellipsoid is
        constant between applied cuts, so whole blocks of support intervals
        collapse into one gemm-backed contraction — the conservative tail,
        where cuts never happen, becomes a handful of array passes.  The
        result is held to the relaxed equivalence tier
        (:mod:`repro.engine.equivalence`), not byte-identity.
        """
        config = self.config
        features = materialized.mapped_features
        if features.shape[1] != config.dimension:
            return False  # let the generic loop raise the usual dimension error
        if not np.all(np.isfinite(features)):
            return False
        if backend not in (None, "reference"):
            return self._run_batch_backend(model, materialized, transcript, backend)
        knowledge = self.knowledge
        fast_ellipsoid = isinstance(knowledge, EllipsoidKnowledge)
        use_reserve = config.use_reserve
        delta = config.delta
        epsilon = config.epsilon
        allow_conservative_cuts = config.allow_conservative_cuts
        link_reserves = materialized.link_reserves
        market_values = materialized.market_values
        identity_link = getattr(model, "link_is_identity", False)
        link = model.link
        link_prices = transcript.link_prices
        posted_prices = transcript.posted_prices
        sold_column = transcript.sold
        skipped_column = transcript.skipped
        exploratory_column = transcript.exploratory
        sqrt = math.sqrt
        isnan = math.isnan
        rounds = features.shape[0]
        skipped_rounds = exploratory_rounds = conservative_rounds = cuts_applied = 0
        if fast_ellipsoid:
            ellipsoid = knowledge.ellipsoid
            shape, center = ellipsoid.shape, ellipsoid.center
        for index in range(rounds):
            x = features[index]
            if fast_ellipsoid:
                # Inlined Ellipsoid.support_interval (same expressions,
                # including the degenerate-gain clamp).
                gain = float(x @ shape @ x)
                if not gain >= _DEGENERATE_GAIN:
                    gain = 0.0
                half_width = sqrt(gain)
                middle = float(x @ center)
                lower = middle - half_width
                upper = middle + half_width
            else:
                lower, upper = knowledge.value_bounds(x)
            if use_reserve:
                reserve = link_reserves[index]
                effective_reserve = _NEGATIVE_INFINITY if isnan(reserve) else reserve
            else:
                effective_reserve = _NEGATIVE_INFINITY
            if effective_reserve >= upper + delta:
                skipped_rounds += 1
                skipped_column[index] = True
                continue
            width = upper - lower
            if width > epsilon:
                price = max(effective_reserve, 0.5 * (lower + upper))
                exploratory = True
                exploratory_rounds += 1
            else:
                price = max(effective_reserve, lower - delta)
                exploratory = False
                conservative_rounds += 1
            posted = price if identity_link else link(float(price))
            accepted = posted <= market_values[index]
            link_prices[index] = price
            posted_prices[index] = posted
            sold_column[index] = accepted
            exploratory_column[index] = exploratory
            if (exploratory or allow_conservative_cuts) and width > 1e-12:
                if accepted:
                    changed = knowledge.cut(x, price - delta, keep="geq")
                else:
                    changed = knowledge.cut(x, price + delta, keep="leq")
                if changed:
                    cuts_applied += 1
                    if fast_ellipsoid:
                        ellipsoid = knowledge.ellipsoid
                        shape, center = ellipsoid.shape, ellipsoid.center
        self.skipped_rounds += skipped_rounds
        self.exploratory_rounds += exploratory_rounds
        self.conservative_rounds += conservative_rounds
        self.cuts_applied += cuts_applied
        self.advance_rounds(rounds)
        return True

    #: Initial block size of the backend path; doubled after every cut-free
    #: block (galloping), so a cut-free conservative tail costs O(log T)
    #: array passes while an exploration-heavy prefix wastes at most one
    #: small block of speculative support intervals per applied cut.
    _BACKEND_BLOCK_START = 64
    _BACKEND_BLOCK_MAX = 65536

    def _run_batch_backend(self, model, materialized, transcript, backend) -> bool:
        """Block-vectorised horizon via a relaxed-tier math backend.

        Between two *applied* cuts the knowledge ellipsoid is constant, so
        every decision in between depends only on the stacked support
        intervals — one backend contraction per block.  Blocks are scanned in
        round order for the first cut candidate that actually changes the
        ellipsoid (no-op cuts — degenerate directions, out-of-range α — leave
        it unchanged, exactly as in the scalar path); the block's decided
        prefix is committed, the cut is applied through the backend's stacked
        kernel, and the walk resumes after it.
        """
        from repro.core import batched_ellipsoid

        knowledge = self.knowledge
        if not isinstance(knowledge, EllipsoidKnowledge):
            # Polytope knowledge has no stacked kernel; reference semantics.
            return self.run_batch(model, materialized, transcript)
        math_backend = batched_ellipsoid.get_backend(backend)

        config = self.config
        features = materialized.mapped_features
        market_values = materialized.market_values
        link_reserves = materialized.link_reserves
        use_reserve = config.use_reserve
        delta = config.delta
        epsilon = config.epsilon
        allow_conservative_cuts = config.allow_conservative_cuts
        identity_link = getattr(model, "link_is_identity", False)
        rounds = features.shape[0]

        link_prices = transcript.link_prices
        posted_prices = transcript.posted_prices
        sold_column = transcript.sold
        skipped_column = transcript.skipped
        exploratory_column = transcript.exploratory

        # Hoisted per-horizon invariant: effective reserves (NaN = absent).
        if use_reserve:
            effective_all = np.where(
                np.isnan(link_reserves), _NEGATIVE_INFINITY, link_reserves
            )
        else:
            effective_all = np.full(rounds, _NEGATIVE_INFINITY)

        skipped_rounds = exploratory_rounds = conservative_rounds = cuts_applied = 0
        start = 0
        block_size = self._BACKEND_BLOCK_START
        while start < rounds:
            stop = min(rounds, start + block_size)
            block = features[start:stop]
            ellipsoid = knowledge.ellipsoid
            lower, upper = math_backend.block_support_intervals(
                ellipsoid.center, ellipsoid.shape, block
            )
            effective = effective_all[start:stop]
            skipped = effective >= upper + delta
            width = upper - lower
            active = ~skipped
            exploratory = active & (width > epsilon)
            price = np.where(
                exploratory,
                np.maximum(effective, 0.5 * (lower + upper)),
                np.maximum(effective, lower - delta),
            )
            # The reference loop never evaluates the link on skipped rounds;
            # zero out their placeholder prices so a non-linear link cannot
            # overflow on values that are never posted.
            safe_price = price if identity_link else np.where(active, price, 0.0)
            posted = safe_price if identity_link else model.link_batch(safe_price)
            accepted = active & (posted <= market_values[start:stop])

            # First cut candidate that actually changes the ellipsoid.
            candidates = active & (width > 1e-12)
            if not allow_conservative_cuts:
                candidates &= exploratory
            limit = stop - start
            applied = False
            for offset_index in np.flatnonzero(candidates):
                j = int(offset_index)
                if accepted[j]:
                    cut_offset, sign = price[j] - delta, -1.0  # keep 'geq'
                else:
                    cut_offset, sign = price[j] + delta, 1.0  # keep 'leq'
                updated = math_backend.single_cut(
                    ellipsoid.center, ellipsoid.shape, block[j], cut_offset, sign
                )
                if updated is not None:
                    # The kernel re-symmetrises and returns fresh arrays, so
                    # the in-place swap skips Ellipsoid.__init__ revalidation.
                    ellipsoid.center, ellipsoid.shape = updated
                    knowledge.cut_count += 1
                    cuts_applied += 1
                    limit = j + 1
                    applied = True
                    break

            prefix = slice(start, start + limit)
            live = active[:limit]
            live_rows = start + np.flatnonzero(live)
            link_prices[live_rows] = price[:limit][live]
            posted_prices[live_rows] = posted[:limit][live]
            sold_column[prefix] = accepted[:limit]
            skipped_column[prefix] = skipped[:limit]
            exploratory_column[prefix] = exploratory[:limit]
            skipped_rounds += int(np.count_nonzero(skipped[:limit]))
            exploratory_rounds += int(np.count_nonzero(exploratory[:limit]))
            conservative_rounds += int(np.count_nonzero(live & ~exploratory[:limit]))
            start += limit
            block_size = (
                self._BACKEND_BLOCK_START
                if applied
                else min(block_size * 2, self._BACKEND_BLOCK_MAX)
            )

        self.skipped_rounds += skipped_rounds
        self.exploratory_rounds += exploratory_rounds
        self.conservative_rounds += conservative_rounds
        self.cuts_applied += cuts_applied
        self.advance_rounds(rounds)
        return True

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def value_bounds(self, features) -> Tuple[float, float]:
        """Current bounds on the link-space market value for ``features``."""
        features = ensure_vector(features, dimension=self.config.dimension, name="features")
        return self.knowledge.value_bounds(features)

    def state_arrays(self) -> Tuple[np.ndarray, ...]:
        return self.knowledge.state_arrays()

    def _effective_reserve(self, reserve: Optional[float]) -> float:
        if not self.config.use_reserve or reserve is None:
            return _NEGATIVE_INFINITY
        reserve = ensure_finite_scalar(reserve, name="reserve")
        return reserve

    def __repr__(self) -> str:  # pragma: no cover
        return "EllipsoidPricer(%s, n=%d, epsilon=%g, delta=%g)" % (
            self.name,
            self.config.dimension,
            self.config.epsilon,
            self.config.delta,
        )


def make_pricer(
    dimension: int,
    radius: float,
    epsilon: float,
    delta: float = 0.0,
    use_reserve: bool = True,
    allow_conservative_cuts: bool = False,
    knowledge: str = "ellipsoid",
    theta_bounds: Optional[Tuple[float, float]] = None,
    initial_ellipsoid=None,
) -> PostedPriceMechanism:
    """Create the appropriate pricer for the feature dimension.

    For ``dimension == 1`` the ellipsoid degenerates to an interval and the
    Löwner–John update formulas are undefined (they divide by ``n² - 1``), so a
    :class:`~repro.core.one_dim.OneDimensionalPricer` is returned instead; for
    higher dimensions an :class:`EllipsoidPricer` is returned.

    Parameters
    ----------
    theta_bounds:
        Optional ``(lower, upper)`` interval for the scalar weight in the
        one-dimensional case; defaults to ``(-radius, radius)``.
    initial_ellipsoid:
        Optional warm-start knowledge ellipsoid (multi-dimensional case only);
        overrides the origin-centered ball of radius ``radius``.
    """
    if dimension == 1:
        from repro.core.one_dim import OneDimensionalPricer

        if theta_bounds is None:
            theta_bounds = (-radius, radius)
        return OneDimensionalPricer(
            theta_lower=theta_bounds[0],
            theta_upper=theta_bounds[1],
            epsilon=epsilon,
            delta=delta,
            use_reserve=use_reserve,
            allow_conservative_cuts=allow_conservative_cuts,
        )
    config = PricerConfig(
        dimension=dimension,
        radius=radius,
        epsilon=epsilon,
        delta=delta,
        use_reserve=use_reserve,
        allow_conservative_cuts=allow_conservative_cuts,
        knowledge=knowledge,
    )
    return EllipsoidPricer(config, initial_ellipsoid=initial_ellipsoid)
