"""Shared utilities: random number handling, validation, timing, memory accounting."""

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.timing import Stopwatch, OnlineLatencyTracker
from repro.utils.validation import (
    ensure_finite_array,
    ensure_finite_scalar,
    ensure_positive,
    ensure_probability,
    ensure_vector,
)
from repro.utils.memory import ndarray_nbytes, PricerMemoryReport
from repro.utils.metrics import LatencySummary, nearest_rank_percentile, pricer_memory

__all__ = [
    "as_rng",
    "spawn_rngs",
    "Stopwatch",
    "OnlineLatencyTracker",
    "ensure_finite_array",
    "ensure_finite_scalar",
    "ensure_positive",
    "ensure_probability",
    "ensure_vector",
    "ndarray_nbytes",
    "LatencySummary",
    "nearest_rank_percentile",
    "pricer_memory",
    "PricerMemoryReport",
]
