"""Shared latency / memory measurement helpers.

One implementation of the latency-summary arithmetic serves both consumers:
the Section V-D overhead experiment (:mod:`repro.experiments.overhead`) and
the online serving metrics (:mod:`repro.serving`).  Percentiles use the
nearest-rank rule (the convention :class:`~repro.utils.timing.
OnlineLatencyTracker` has always used), so a p95 read through either surface
is the same number.

Memory accounting already lives in :mod:`repro.utils.memory`;
:func:`pricer_memory` is the one-call wrapper both surfaces share.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.utils.memory import PricerMemoryReport


def nearest_rank_percentile(sorted_samples: Sequence[float], percentile: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample sequence.

    Implements the actual nearest-rank rule: the p-th percentile of ``count``
    samples is the sample at rank ``ceil(p / 100 * count)`` (1-based), so it
    is always an observed value and never interpolates — p50 of
    ``[1, 2, 3, 4]`` is 2, p100 is the maximum, p0 the minimum.

    Returns 0.0 for an empty sequence; raises for percentiles outside
    ``[0, 100]``.  This is the single percentile implementation shared by the
    latency tracker, the overhead experiment, and the serving metrics.
    """
    if not 0 <= percentile <= 100:
        raise ValueError("percentile must be in [0, 100], got %g" % percentile)
    count = len(sorted_samples)
    if count == 0:
        return 0.0
    rank = math.ceil(percentile / 100.0 * count)
    index = min(count - 1, max(0, rank - 1))
    return float(sorted_samples[index])


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of a batch of per-operation latencies.

    All values are in milliseconds; ``count`` is the number of samples.  An
    empty sample set summarises to all-zero (the convention of the legacy
    tracker properties).
    """

    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    @classmethod
    def from_seconds(cls, samples_seconds: Iterable[float]) -> "LatencySummary":
        """Summarise a sequence of latencies given in seconds."""
        ordered: List[float] = sorted(samples_seconds)
        count = len(ordered)
        if count == 0:
            return cls(count=0, mean_ms=0.0, p50_ms=0.0, p95_ms=0.0, p99_ms=0.0, max_ms=0.0)
        return cls(
            count=count,
            mean_ms=1000.0 * sum(ordered) / count,
            p50_ms=1000.0 * nearest_rank_percentile(ordered, 50),
            p95_ms=1000.0 * nearest_rank_percentile(ordered, 95),
            p99_ms=1000.0 * nearest_rank_percentile(ordered, 99),
            max_ms=1000.0 * ordered[-1],
        )

    def as_dict(self) -> dict:
        """JSON-ready mapping (the ``latency`` block of bench reports)."""
        return {
            "count": self.count,
            "mean_ms": self.mean_ms,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "max_ms": self.max_ms,
        }


def pricer_memory(pricer) -> PricerMemoryReport:
    """Memory footprint of one pricer (state arrays + process RSS)."""
    return pricer.memory_report()
