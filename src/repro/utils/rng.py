"""Random-number-generator helpers.

Every stochastic component in the package accepts either a seed (``int``), an
existing :class:`numpy.random.Generator`, or ``None``.  Centralising the
conversion keeps simulations reproducible: an experiment module creates one
generator from its seed and passes children to each component via
:func:`spawn_rngs`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def as_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, or an existing generator
        (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, count: int) -> List[np.random.Generator]:
    """Create ``count`` statistically independent child generators.

    Children are derived through :class:`numpy.random.SeedSequence` spawning so
    that components seeded from the same parent do not share streams.
    """
    if count < 0:
        raise ValueError("count must be non-negative, got %d" % count)
    if isinstance(seed, np.random.Generator):
        parent_seq = seed.bit_generator.seed_seq
    else:
        parent_seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in parent_seq.spawn(count)]


def shuffled(items: Iterable, seed: RngLike = None) -> list:
    """Return ``items`` as a list in a reproducibly shuffled order."""
    rng = as_rng(seed)
    out = list(items)
    rng.shuffle(out)
    return out


def random_unit_vector(dimension: int, seed: RngLike = None) -> np.ndarray:
    """Sample a vector uniformly from the unit sphere in ``dimension`` dims."""
    if dimension <= 0:
        raise ValueError("dimension must be positive, got %d" % dimension)
    rng = as_rng(seed)
    vec = rng.standard_normal(dimension)
    norm = float(np.linalg.norm(vec))
    if norm == 0.0:  # astronomically unlikely; retry deterministically
        vec = np.ones(dimension)
        norm = float(np.linalg.norm(vec))
    return vec / norm


def optional_seed(rng: Optional[np.random.Generator]) -> Optional[int]:
    """Draw a fresh integer seed from ``rng`` (or return ``None`` if absent)."""
    if rng is None:
        return None
    return int(rng.integers(0, 2**31 - 1))
