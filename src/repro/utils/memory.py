"""Memory accounting for the pricing mechanisms.

The paper reports the memory overhead of the broker's state (Section V-D) and
argues analytically that the space complexity is ``O(n^2)`` — one ``n x n``
shape matrix plus one ``n``-vector center.  We account for that state exactly
(ndarray byte counts) and additionally expose the process resident set size
when ``/proc`` is available, mirroring the paper's ``VmRSS`` measurement.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np


def ndarray_nbytes(arrays: Iterable[np.ndarray]) -> int:
    """Total number of bytes held by ``arrays``."""
    return int(sum(int(np.asarray(a).nbytes) for a in arrays))


def process_rss_bytes() -> Optional[int]:
    """Resident set size of the current process in bytes, or ``None``.

    Reads ``/proc/self/status`` (the same source as the paper's ``VmRSS``
    measurement); returns ``None`` on platforms without procfs.
    """
    status_path = "/proc/self/status"
    if not os.path.exists(status_path):
        return None
    try:
        with open(status_path) as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    parts = line.split()
                    return int(parts[1]) * 1024
    except OSError:
        return None
    return None


@dataclass(frozen=True)
class PricerMemoryReport:
    """Memory footprint of one pricing mechanism instance.

    Attributes
    ----------
    state_bytes:
        Bytes held by the pricer's own state (ellipsoid matrix, center, ...).
    process_rss_bytes:
        Resident set size of the whole Python process, when available.
    """

    state_bytes: int
    process_rss_bytes: Optional[int]

    @property
    def state_megabytes(self) -> float:
        """Pricer state in MiB."""
        return self.state_bytes / (1024.0 * 1024.0)

    @property
    def process_megabytes(self) -> Optional[float]:
        """Process RSS in MiB, or ``None`` when unavailable."""
        if self.process_rss_bytes is None:
            return None
        return self.process_rss_bytes / (1024.0 * 1024.0)


def report_for_arrays(arrays: Iterable[np.ndarray]) -> PricerMemoryReport:
    """Build a :class:`PricerMemoryReport` for the given state arrays."""
    return PricerMemoryReport(
        state_bytes=ndarray_nbytes(arrays),
        process_rss_bytes=process_rss_bytes(),
    )
