"""Input validation helpers shared by the core and substrate packages."""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.exceptions import DimensionMismatchError, InvalidPriceError

ArrayLike = Union[Sequence[float], np.ndarray]


def ensure_vector(value: ArrayLike, dimension: int = None, name: str = "vector") -> np.ndarray:
    """Convert ``value`` to a 1-D float array, optionally checking its length."""
    arr = np.asarray(value, dtype=float)
    if arr.ndim != 1:
        raise DimensionMismatchError(
            "%s must be one-dimensional, got shape %s" % (name, arr.shape)
        )
    if dimension is not None and arr.shape[0] != dimension:
        raise DimensionMismatchError(
            "%s must have dimension %d, got %d" % (name, dimension, arr.shape[0])
        )
    ensure_finite_array(arr, name=name)
    return arr


def ensure_finite_array(value: ArrayLike, name: str = "array") -> np.ndarray:
    """Check that every entry of ``value`` is finite and return it as an array."""
    arr = np.asarray(value, dtype=float)
    if not np.all(np.isfinite(arr)):
        raise ValueError("%s contains non-finite entries" % name)
    return arr


def ensure_finite_scalar(value: float, name: str = "value") -> float:
    """Check that ``value`` is a finite scalar and return it as ``float``."""
    scalar = float(value)
    if not np.isfinite(scalar):
        raise ValueError("%s must be finite, got %r" % (name, value))
    return scalar


def ensure_positive(value: float, name: str = "value", strict: bool = True) -> float:
    """Check that ``value`` is positive (or non-negative when ``strict=False``)."""
    scalar = ensure_finite_scalar(value, name=name)
    if strict and scalar <= 0:
        raise ValueError("%s must be strictly positive, got %g" % (name, scalar))
    if not strict and scalar < 0:
        raise ValueError("%s must be non-negative, got %g" % (name, scalar))
    return scalar


def ensure_probability(value: float, name: str = "probability") -> float:
    """Check that ``value`` lies in [0, 1]."""
    scalar = ensure_finite_scalar(value, name=name)
    if not 0.0 <= scalar <= 1.0:
        raise ValueError("%s must lie in [0, 1], got %g" % (name, scalar))
    return scalar


def ensure_price(value: float, name: str = "price") -> float:
    """Check that a price is finite and non-negative."""
    scalar = float(value)
    if not np.isfinite(scalar) or scalar < 0:
        raise InvalidPriceError("%s must be a finite non-negative number, got %r" % (name, value))
    return scalar


def ensure_square_matrix(value: ArrayLike, dimension: int = None, name: str = "matrix") -> np.ndarray:
    """Convert ``value`` to a square 2-D float array."""
    arr = np.asarray(value, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise DimensionMismatchError("%s must be square, got shape %s" % (name, arr.shape))
    if dimension is not None and arr.shape[0] != dimension:
        raise DimensionMismatchError(
            "%s must be %dx%d, got %s" % (name, dimension, dimension, arr.shape)
        )
    ensure_finite_array(arr, name=name)
    return arr
