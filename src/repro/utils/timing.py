"""Timing utilities used by the overhead experiments (Section V-D of the paper)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List


class Stopwatch:
    """A simple context-manager stopwatch measuring elapsed wall-clock seconds.

    Example
    -------
    >>> with Stopwatch() as sw:
    ...     _ = sum(range(1000))
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start = None
        self.elapsed = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class OnlineLatencyTracker:
    """Accumulates per-round latencies of an online pricing loop.

    The paper reports per-round online latency in milliseconds (Section V-D);
    this tracker records each round's wall-clock time so the overhead
    experiment can report mean / percentile latencies.
    """

    samples_seconds: List[float] = field(default_factory=list)

    def record(self, seconds: float) -> None:
        """Record one round's latency in seconds."""
        if seconds < 0:
            raise ValueError("latency must be non-negative, got %g" % seconds)
        self.samples_seconds.append(float(seconds))

    @property
    def count(self) -> int:
        """Number of recorded rounds."""
        return len(self.samples_seconds)

    @property
    def mean_milliseconds(self) -> float:
        """Mean per-round latency in milliseconds (0.0 when empty)."""
        if not self.samples_seconds:
            return 0.0
        return 1000.0 * sum(self.samples_seconds) / len(self.samples_seconds)

    @property
    def max_milliseconds(self) -> float:
        """Maximum per-round latency in milliseconds (0.0 when empty)."""
        if not self.samples_seconds:
            return 0.0
        return 1000.0 * max(self.samples_seconds)

    def percentile_milliseconds(self, percentile: float) -> float:
        """Latency percentile (e.g. 95) in milliseconds.

        Delegates to the shared nearest-rank implementation in
        :mod:`repro.utils.metrics`, so experiment and serving percentiles are
        computed by one piece of code.
        """
        from repro.utils.metrics import nearest_rank_percentile

        return 1000.0 * nearest_rank_percentile(sorted(self.samples_seconds), percentile)

    def summary(self) -> "object":
        """A :class:`repro.utils.metrics.LatencySummary` of the samples."""
        from repro.utils.metrics import LatencySummary

        return LatencySummary.from_seconds(self.samples_seconds)
