"""Experiment harness: one module per table / figure of the paper's evaluation.

========================  ==========================================  =====================
Paper artefact            Module                                      Bench target
========================  ==========================================  =====================
Fig. 1                    :mod:`repro.core.regret` (regret curve)     tests / quickstart
Fig. 4 (a)–(f)            :mod:`repro.experiments.fig4`               ``benchmarks/bench_fig4.py``
Table I                   :mod:`repro.experiments.table1`             ``benchmarks/bench_table1.py``
Fig. 5 (a)                :mod:`repro.experiments.fig5`               ``benchmarks/bench_fig5a.py``
Fig. 5 (b)                :mod:`repro.experiments.fig5`               ``benchmarks/bench_fig5b.py``
Fig. 5 (c)                :mod:`repro.experiments.fig5`               ``benchmarks/bench_fig5c.py``
Section V-D (overhead)    :mod:`repro.experiments.overhead`           ``benchmarks/bench_overhead.py``
Fig. 6 / Lemma 8          :mod:`repro.experiments.adversarial`        ``benchmarks/bench_lemma8.py``
Theorems 1 / 3 (scaling)  :mod:`repro.experiments.regret_scaling`     ``benchmarks/bench_regret_scaling.py``
========================  ==========================================  =====================

Every experiment function takes explicit size parameters so the benches can run
scaled-down versions by default while ``examples/`` and ``EXPERIMENTS.md`` use
paper-scale settings.
"""

from repro.experiments.fig4 import Fig4Result, run_fig4
from repro.experiments.fig5 import (
    Fig5aResult,
    Fig5bResult,
    Fig5cResult,
    run_fig5a,
    run_fig5b,
    run_fig5c,
)
from repro.experiments.table1 import Table1Row, run_table1
from repro.experiments.overhead import OverheadReport, run_overhead
from repro.experiments.adversarial import AdversarialResult, run_adversarial_example
from repro.experiments.regret_scaling import ScalingResult, run_dimension_scaling, run_horizon_scaling
from repro.experiments.cold_start import ColdStartResult, run_cold_start
from repro.experiments.noise_robustness import (
    NoiseRobustnessResult,
    format_noise_robustness,
    run_noise_robustness,
)
from repro.experiments.reporting import format_series_table, format_table

__all__ = [
    "Fig4Result",
    "run_fig4",
    "Fig5aResult",
    "Fig5bResult",
    "Fig5cResult",
    "run_fig5a",
    "run_fig5b",
    "run_fig5c",
    "Table1Row",
    "run_table1",
    "OverheadReport",
    "run_overhead",
    "AdversarialResult",
    "run_adversarial_example",
    "ScalingResult",
    "run_dimension_scaling",
    "run_horizon_scaling",
    "ColdStartResult",
    "run_cold_start",
    "NoiseRobustnessResult",
    "run_noise_robustness",
    "format_noise_robustness",
    "format_table",
    "format_series_table",
]
