"""Table I: per-round statistics of the version with reserve price.

For each feature dimension the paper reports the mean (and standard deviation)
of the per-round market value, reserve price, posted price, and regret under
the version with reserve price, together with the horizon ``T``.
:func:`run_table1` regenerates those rows.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.common import VersionPricerFactory
from repro.apps.noisy_linear_query import NoisyLinearQueryConfig, build_noisy_query_scenario
from repro.engine import RunMatrix
from repro.experiments.fig4 import PAPER_ROUNDS_BY_DIMENSION
from repro.experiments.reporting import format_table


@dataclass
class Table1Row:
    """One row of Table I (mean, std pairs for the per-round quantities)."""

    dimension: int
    rounds: int
    market_value: Tuple[float, float]
    reserve_price: Tuple[float, float]
    posted_price: Tuple[float, float]
    regret: Tuple[float, float]
    regret_ratio: float

    def as_cells(self) -> List:
        """Row cells in the order used by the printable table."""
        return [
            self.dimension,
            self.rounds,
            _fmt(self.market_value),
            _fmt(self.reserve_price),
            _fmt(self.posted_price),
            _fmt(self.regret),
            "%.4f" % self.regret_ratio,
        ]


def run_table1(
    dimensions: Sequence[int] = (1, 20, 40, 60, 80, 100),
    rounds: Optional[int] = None,
    owner_count: int = 300,
    delta: float = 0.01,
    seed: int = 7,
    executor: str = "auto",
    max_workers: Optional[int] = None,
) -> List[Table1Row]:
    """Regenerate the rows of Table I (version with reserve price).

    One run-matrix cell per dimension, fanned across workers when the
    workload warrants it.
    """
    version = "with reserve price"
    matrix = RunMatrix()
    horizons: Dict[int, int] = {}
    for dimension in dimensions:
        horizon = rounds if rounds is not None else min(
            PAPER_ROUNDS_BY_DIMENSION.get(dimension, 10_000), 20_000
        )
        horizons[dimension] = horizon
        config = NoisyLinearQueryConfig(
            dimension=dimension,
            rounds=horizon,
            owner_count=owner_count,
            delta=delta,
            seed=seed + dimension,
        )
        matrix.add_scenario(
            "n=%d" % dimension, functools.partial(build_noisy_query_scenario, config)
        )
    matrix.add_pricer(version, VersionPricerFactory(version))
    matrix.add_cross()
    grid = matrix.run(executor=executor, max_workers=max_workers)

    rows: List[Table1Row] = []
    for dimension in dimensions:
        horizon = horizons[dimension]
        stats = grid.get("n=%d" % dimension, version).summary_statistics()
        rows.append(
            Table1Row(
                dimension=dimension,
                rounds=horizon,
                market_value=stats["market_value"],
                reserve_price=stats["reserve_price"],
                posted_price=stats["posted_price"],
                regret=stats["regret"],
                regret_ratio=stats["regret_ratio"],
            )
        )
    return rows


def format_table1(rows: Sequence[Table1Row]) -> str:
    """Printable rendering of Table I."""
    headers = ["n", "T", "market value", "reserve price", "posted price", "regret", "regret ratio"]
    return format_table(headers, [row.as_cells() for row in rows])


def _fmt(pair: Tuple[float, float]) -> str:
    return "%.3f (%.3f)" % pair
