"""Regret-scaling experiments backing Theorems 1 and 3.

Two sweeps substantiate the theoretical regret bounds and the ε ablation
called out in DESIGN.md:

* :func:`run_horizon_scaling` — cumulative regret versus the horizon ``T``
  (Theorem 1/3 predict growth that is logarithmic in ``T`` once the horizon
  exceeds the exploration budget, i.e. strongly sub-linear),
* :func:`run_dimension_scaling` — cumulative regret versus the feature
  dimension ``n`` (Theorem 1 predicts roughly quadratic growth),
* :func:`run_epsilon_ablation` — cumulative regret versus the exploration
  threshold ε around the theoretical ``max(n²/T, 4nδ)`` setting.

Each sweep is declared as a :class:`~repro.engine.RunMatrix` — one scenario
per sweep point — so the points run in parallel when the workload warrants it.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.apps.common import VersionPricerFactory
from repro.apps.noisy_linear_query import NoisyLinearQueryConfig, build_noisy_query_scenario
from repro.engine import RunMatrix
from repro.experiments.reporting import format_table


@dataclass
class ScalingResult:
    """One point of a scaling sweep."""

    parameter_name: str
    parameter_value: float
    rounds: int
    dimension: int
    cumulative_regret: float
    regret_ratio: float

    def as_cells(self) -> List:
        """Row cells for the printable table."""
        return [
            "%g" % self.parameter_value,
            self.dimension,
            self.rounds,
            "%.2f" % self.cumulative_regret,
            "%.4f" % self.regret_ratio,
        ]


def _run_sweep(
    parameter_name: str,
    points: List[Tuple[float, NoisyLinearQueryConfig]],
    version: str,
    executor: str,
    max_workers: Optional[int],
) -> List[ScalingResult]:
    """Run one (scenario per sweep point) × (one version) matrix.

    Scenario keys carry the point index so repeated (or near-equal) sweep
    values each get their own cell.
    """
    matrix = RunMatrix()
    for index, (value, config) in enumerate(points):
        matrix.add_scenario(
            "%s=%g/%d" % (parameter_name, value, index),
            functools.partial(build_noisy_query_scenario, config),
        )
    matrix.add_pricer(version, VersionPricerFactory(version))
    matrix.add_cross()
    grid = matrix.run(executor=executor, max_workers=max_workers)
    results: List[ScalingResult] = []
    for index, (value, config) in enumerate(points):
        outcome = grid.get("%s=%g/%d" % (parameter_name, value, index), version)
        results.append(
            ScalingResult(
                parameter_name=parameter_name,
                parameter_value=float(value),
                rounds=config.rounds,
                dimension=config.dimension,
                cumulative_regret=outcome.cumulative_regret,
                regret_ratio=outcome.regret_ratio,
            )
        )
    return results


def run_horizon_scaling(
    horizons: Sequence[int] = (1_000, 2_000, 5_000, 10_000, 20_000),
    dimension: int = 20,
    owner_count: int = 300,
    version: str = "with reserve price",
    seed: int = 29,
    executor: str = "auto",
    max_workers: Optional[int] = None,
) -> List[ScalingResult]:
    """Cumulative regret as the horizon ``T`` grows (fixed dimension)."""
    points = [
        (
            float(horizon),
            NoisyLinearQueryConfig(
                dimension=dimension, rounds=horizon, owner_count=owner_count, seed=seed
            ),
        )
        for horizon in horizons
    ]
    return _run_sweep("T", points, version, executor, max_workers)


def run_dimension_scaling(
    dimensions: Sequence[int] = (10, 20, 40, 60, 80),
    rounds: int = 10_000,
    owner_count: int = 300,
    version: str = "with reserve price",
    seed: int = 31,
    executor: str = "auto",
    max_workers: Optional[int] = None,
) -> List[ScalingResult]:
    """Cumulative regret as the feature dimension ``n`` grows (fixed horizon)."""
    points = [
        (
            float(dimension),
            NoisyLinearQueryConfig(
                dimension=dimension, rounds=rounds, owner_count=owner_count, seed=seed
            ),
        )
        for dimension in dimensions
    ]
    return _run_sweep("n", points, version, executor, max_workers)


def run_epsilon_ablation(
    epsilon_multipliers: Sequence[float] = (0.1, 0.5, 1.0, 2.0, 10.0),
    dimension: int = 20,
    rounds: int = 10_000,
    owner_count: int = 300,
    version: str = "with reserve price",
    seed: int = 37,
    executor: str = "auto",
    max_workers: Optional[int] = None,
) -> List[ScalingResult]:
    """Cumulative regret as ε is scaled around the theoretical setting."""
    base_config = NoisyLinearQueryConfig(
        dimension=dimension, rounds=rounds, owner_count=owner_count, seed=seed
    )
    base_epsilon = base_config.resolved_epsilon()
    points = [
        (
            float(multiplier),
            NoisyLinearQueryConfig(
                dimension=dimension,
                rounds=rounds,
                owner_count=owner_count,
                epsilon=base_epsilon * multiplier,
                seed=seed,
            ),
        )
        for multiplier in epsilon_multipliers
    ]
    return _run_sweep("epsilon multiplier", points, version, executor, max_workers)


def format_scaling(results: Sequence[ScalingResult]) -> str:
    """Printable rendering of a scaling sweep."""
    if not results:
        return "(empty sweep)"
    headers = [results[0].parameter_name, "n", "T", "cumulative regret", "regret ratio"]
    return format_table(headers, [result.as_cells() for result in results])
