"""Regret-scaling experiments backing Theorems 1 and 3.

Two sweeps substantiate the theoretical regret bounds and the ε ablation
called out in DESIGN.md:

* :func:`run_horizon_scaling` — cumulative regret versus the horizon ``T``
  (Theorem 1/3 predict growth that is logarithmic in ``T`` once the horizon
  exceeds the exploration budget, i.e. strongly sub-linear),
* :func:`run_dimension_scaling` — cumulative regret versus the feature
  dimension ``n`` (Theorem 1 predicts roughly quadratic growth),
* :func:`run_epsilon_ablation` — cumulative regret versus the exploration
  threshold ε around the theoretical ``max(n²/T, 4nδ)`` setting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.apps.noisy_linear_query import NoisyLinearQueryConfig, run_noisy_query_experiment
from repro.experiments.reporting import format_table


@dataclass
class ScalingResult:
    """One point of a scaling sweep."""

    parameter_name: str
    parameter_value: float
    rounds: int
    dimension: int
    cumulative_regret: float
    regret_ratio: float

    def as_cells(self) -> List:
        """Row cells for the printable table."""
        return [
            "%g" % self.parameter_value,
            self.dimension,
            self.rounds,
            "%.2f" % self.cumulative_regret,
            "%.4f" % self.regret_ratio,
        ]


def run_horizon_scaling(
    horizons: Sequence[int] = (1_000, 2_000, 5_000, 10_000, 20_000),
    dimension: int = 20,
    owner_count: int = 300,
    version: str = "with reserve price",
    seed: int = 29,
) -> List[ScalingResult]:
    """Cumulative regret as the horizon ``T`` grows (fixed dimension)."""
    results: List[ScalingResult] = []
    for horizon in horizons:
        config = NoisyLinearQueryConfig(
            dimension=dimension, rounds=horizon, owner_count=owner_count, seed=seed
        )
        outcome = run_noisy_query_experiment(config, versions=(version,))[version]
        results.append(
            ScalingResult(
                parameter_name="T",
                parameter_value=float(horizon),
                rounds=horizon,
                dimension=dimension,
                cumulative_regret=outcome.cumulative_regret,
                regret_ratio=outcome.regret_ratio,
            )
        )
    return results


def run_dimension_scaling(
    dimensions: Sequence[int] = (10, 20, 40, 60, 80),
    rounds: int = 10_000,
    owner_count: int = 300,
    version: str = "with reserve price",
    seed: int = 31,
) -> List[ScalingResult]:
    """Cumulative regret as the feature dimension ``n`` grows (fixed horizon)."""
    results: List[ScalingResult] = []
    for dimension in dimensions:
        config = NoisyLinearQueryConfig(
            dimension=dimension, rounds=rounds, owner_count=owner_count, seed=seed
        )
        outcome = run_noisy_query_experiment(config, versions=(version,))[version]
        results.append(
            ScalingResult(
                parameter_name="n",
                parameter_value=float(dimension),
                rounds=rounds,
                dimension=dimension,
                cumulative_regret=outcome.cumulative_regret,
                regret_ratio=outcome.regret_ratio,
            )
        )
    return results


def run_epsilon_ablation(
    epsilon_multipliers: Sequence[float] = (0.1, 0.5, 1.0, 2.0, 10.0),
    dimension: int = 20,
    rounds: int = 10_000,
    owner_count: int = 300,
    version: str = "with reserve price",
    seed: int = 37,
) -> List[ScalingResult]:
    """Cumulative regret as ε is scaled around the theoretical setting."""
    base_config = NoisyLinearQueryConfig(
        dimension=dimension, rounds=rounds, owner_count=owner_count, seed=seed
    )
    base_epsilon = base_config.resolved_epsilon()
    results: List[ScalingResult] = []
    for multiplier in epsilon_multipliers:
        config = NoisyLinearQueryConfig(
            dimension=dimension,
            rounds=rounds,
            owner_count=owner_count,
            epsilon=base_epsilon * multiplier,
            seed=seed,
        )
        outcome = run_noisy_query_experiment(config, versions=(version,))[version]
        results.append(
            ScalingResult(
                parameter_name="epsilon multiplier",
                parameter_value=float(multiplier),
                rounds=rounds,
                dimension=dimension,
                cumulative_regret=outcome.cumulative_regret,
                regret_ratio=outcome.regret_ratio,
            )
        )
    return results


def format_scaling(results: Sequence[ScalingResult]) -> str:
    """Printable rendering of a scaling sweep."""
    if not results:
        return "(empty sweep)"
    headers = [results[0].parameter_name, "n", "T", "cumulative regret", "regret ratio"]
    return format_table(headers, [result.as_cells() for result in results])
