"""Noise-robustness ablation: how the buffer δ copes with market value noise.

Algorithm 2 circumvents σ-sub-Gaussian uncertainty by buffering the cuts with
``δ = √(2 log C) σ log T``.  This ablation sweeps the *realised* noise scale
against the *assumed* buffer and reports (a) whether the true weight vector is
still inside the knowledge set at the end of the run and (b) the cumulative
regret, substantiating two claims:

* with the correctly sized buffer the mechanism is robust (θ* survives and the
  regret degrades gracefully as σ grows),
* ignoring the uncertainty (δ = 0) while the market is noisy risks cutting θ*
  away, after which the regret can stop improving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.models import LinearModel
from repro.core.noise import GaussianNoise, uncertainty_buffer
from repro.core.pricing import EllipsoidPricer, PricerConfig
from repro.core.simulation import MarketSimulator, QueryArrival
from repro.experiments.reporting import format_table
from repro.utils.rng import spawn_rngs


@dataclass
class NoiseRobustnessResult:
    """One sweep point: realised noise σ, assumed buffer δ, and outcomes."""

    sigma: float
    delta: float
    rounds: int
    dimension: int
    cumulative_regret: float
    regret_ratio: float
    theta_retained: bool

    def as_cells(self) -> List:
        """Row cells for the printable table."""
        return [
            "%.4g" % self.sigma,
            "%.4g" % self.delta,
            "%.2f" % self.cumulative_regret,
            "%.4f" % self.regret_ratio,
            "yes" if self.theta_retained else "NO",
        ]


def run_noise_robustness(
    sigmas: Sequence[float] = (0.0, 0.001, 0.005, 0.02),
    use_buffer: bool = True,
    dimension: int = 10,
    rounds: int = 4_000,
    seed: int = 43,
) -> List[NoiseRobustnessResult]:
    """Sweep the realised noise scale with (or without) the matched buffer δ."""
    results: List[NoiseRobustnessResult] = []
    for sigma in sigmas:
        results.append(
            _run_single(sigma=sigma, use_buffer=use_buffer, dimension=dimension, rounds=rounds, seed=seed)
        )
    return results


def _run_single(
    sigma: float, use_buffer: bool, dimension: int, rounds: int, seed: int
) -> NoiseRobustnessResult:
    rng_theta, rng_features, rng_noise = spawn_rngs(seed, 3)
    theta = np.abs(rng_theta.standard_normal(dimension))
    theta *= np.sqrt(2 * dimension) / np.linalg.norm(theta)
    model = LinearModel(theta)

    delta = uncertainty_buffer(sigma, rounds) if (use_buffer and sigma > 0) else 0.0
    noise = GaussianNoise(sigma) if sigma > 0 else None

    epsilon = max(dimension**2 / rounds, 4 * dimension * delta, 1e-6)
    pricer = EllipsoidPricer(
        PricerConfig(
            dimension=dimension,
            radius=2.0 * np.sqrt(dimension),
            epsilon=epsilon,
            delta=delta,
            use_reserve=True,
        )
    )

    arrivals: List[QueryArrival] = []
    for _ in range(rounds):
        features = np.abs(rng_features.standard_normal(dimension))
        features /= np.linalg.norm(features)
        noise_value = float(noise.sample(rng_noise)) if noise is not None else 0.0
        arrivals.append(
            QueryArrival(
                features=features,
                reserve_value=0.6 * float(features @ theta),
                noise=noise_value,
            )
        )
    result = MarketSimulator(model, pricer).run(arrivals)
    return NoiseRobustnessResult(
        sigma=float(sigma),
        delta=float(delta),
        rounds=rounds,
        dimension=dimension,
        cumulative_regret=result.cumulative_regret,
        regret_ratio=result.regret_ratio,
        theta_retained=bool(pricer.knowledge.contains(theta)),
    )


def format_noise_robustness(results: Sequence[NoiseRobustnessResult]) -> str:
    """Printable rendering of the sweep."""
    headers = ["sigma", "delta (buffer)", "cumulative regret", "regret ratio", "theta retained"]
    return format_table(headers, [result.as_cells() for result in results])
