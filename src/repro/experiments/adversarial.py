"""Lemma 8 / Fig. 6: why conservative prices must not refine the knowledge set.

The paper proves that if the broker is allowed to cut the ellipsoid with
conservative posted prices, an adversary can force Ω(T) regret: in the first
half of the horizon it sends queries along the first coordinate with the
reserve price pinned to the broker's current midpoint, which (if cuts are
allowed) repeatedly halves the ellipsoid along that coordinate while the other
axes blow up by a factor ``n/√(n²-1)`` per round; in the second half it sends
queries along the second coordinate, where the inflated knowledge set forces
an exploration phase whose length grows linearly in T.

This experiment plays that adversary against the pricer with and without the
``allow_conservative_cuts`` ablation switch and reports both cumulative regrets
and the width of the knowledge set along the second coordinate at half time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.pricing import EllipsoidPricer, PricerConfig
from repro.core.regret import single_round_regret


@dataclass
class AdversarialResult:
    """Outcome of the Lemma 8 adversarial game for one pricer variant."""

    allow_conservative_cuts: bool
    rounds: int
    dimension: int
    cumulative_regret: float
    second_half_regret: float
    exploratory_rounds_second_half: int
    width_along_second_axis_at_half_time: float

    def format(self) -> str:
        """One-line summary used by the bench output."""
        label = "conservative cuts ALLOWED" if self.allow_conservative_cuts else "conservative cuts forbidden"
        return (
            "%s: total regret %.2f, second-half regret %.2f, "
            "second-half exploratory rounds %d, width along e2 at T/2 = %.3g"
            % (
                label,
                self.cumulative_regret,
                self.second_half_regret,
                self.exploratory_rounds_second_half,
                self.width_along_second_axis_at_half_time,
            )
        )


def run_adversarial_example(
    rounds: int = 2_000,
    dimension: int = 2,
    theta_first: float = 0.6,
    theta_second: float = 0.5,
    epsilon: float = 1e-3,
) -> Dict[str, AdversarialResult]:
    """Play the Lemma 8 adversary against both pricer variants.

    Parameters
    ----------
    rounds:
        Total horizon ``T`` (split in half between the two phases).
    dimension:
        Ambient dimension ``n`` (2 in the paper's illustration, Fig. 6).
    theta_first / theta_second:
        The true weights along the first two coordinates (the market values of
        the two phases).  Both must lie inside the unit ball so that the
        initial knowledge set (radius 1) contains ``θ*``.
    epsilon:
        Exploration threshold; small so the second-phase exploration length is
        governed by the knowledge set's width rather than by ε.
    """
    if rounds < 4:
        raise ValueError("rounds must be at least 4, got %d" % rounds)
    if dimension < 2:
        raise ValueError("dimension must be at least 2, got %d" % dimension)
    results: Dict[str, AdversarialResult] = {}
    for allow in (False, True):
        results["allowed" if allow else "forbidden"] = _play(
            rounds, dimension, theta_first, theta_second, epsilon, allow
        )
    return results


def _play(
    rounds: int,
    dimension: int,
    theta_first: float,
    theta_second: float,
    epsilon: float,
    allow_conservative_cuts: bool,
) -> AdversarialResult:
    theta = np.zeros(dimension)
    theta[0] = theta_first
    theta[1] = theta_second

    config = PricerConfig(
        dimension=dimension,
        radius=1.0,
        epsilon=epsilon,
        delta=0.0,
        use_reserve=True,
        allow_conservative_cuts=allow_conservative_cuts,
    )
    pricer = EllipsoidPricer(config)

    first_axis = np.zeros(dimension)
    first_axis[0] = 1.0
    second_axis = np.zeros(dimension)
    second_axis[1] = 1.0

    half = rounds // 2
    total_regret = 0.0
    second_half_regret = 0.0
    exploratory_second_half = 0
    width_at_half = 0.0

    for round_index in range(rounds):
        if round_index < half:
            features = first_axis
            market_value = float(features @ theta)
            # Adversarial reserve: pinned to the broker's current midpoint so a
            # cut along this direction is always available to a broker that
            # (wrongly) refines on conservative prices.
            lower, upper = pricer.value_bounds(features)
            reserve = 0.5 * (lower + upper)
        else:
            features = second_axis
            market_value = float(features @ theta)
            reserve = None

        if round_index == half:
            width_at_half = pricer.knowledge.width_along(second_axis)

        decision = pricer.propose(features, reserve=reserve)
        if decision.skipped or decision.price is None:
            sold = False
            price = None
        else:
            price = float(decision.price)
            sold = price <= market_value
        pricer.update(decision, accepted=sold)

        regret = single_round_regret(market_value, reserve, price, sold)
        total_regret += regret
        if round_index >= half:
            second_half_regret += regret
            if decision.exploratory and not decision.skipped:
                exploratory_second_half += 1

    return AdversarialResult(
        allow_conservative_cuts=allow_conservative_cuts,
        rounds=rounds,
        dimension=dimension,
        cumulative_regret=total_regret,
        second_half_regret=second_half_regret,
        exploratory_rounds_second_half=exploratory_second_half,
        width_along_second_axis_at_half_time=width_at_half,
    )
