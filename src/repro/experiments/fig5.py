"""Fig. 5: regret ratios for the three application instances.

* Fig. 5(a): regret ratios of the four algorithm versions and the risk-averse
  baseline for the noisy-linear-query application at ``n = 100``,
* Fig. 5(b): regret ratios of the pure version and the versions with reserve
  price for the accommodation-rental application at reserve/market log ratios
  ``r ∈ {0.4, 0.6, 0.8}``, plus the risk-averse baseline at each ratio,
* Fig. 5(c): regret ratios of the pure version for the impression application
  in the sparse and dense cases at hashing dimensions 128 and 1024.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.apps.accommodation import AccommodationConfig, build_accommodation_environment
from repro.apps.common import ALGORITHM_VERSIONS, RISK_AVERSE, VersionPricerFactory, run_versions
from repro.apps.impression import ImpressionConfig, build_impression_environment
from repro.apps.noisy_linear_query import NoisyLinearQueryConfig, build_noisy_query_environment
from repro.engine import RunMatrix
from repro.experiments.reporting import checkpoints_for, format_series_table


# --------------------------------------------------------------------------- #
# Fig. 5(a): noisy linear query, n = 100
# --------------------------------------------------------------------------- #


@dataclass
class Fig5aResult:
    """Regret-ratio series of the noisy-linear-query application."""

    dimension: int
    rounds: int
    checkpoints: List[int]
    regret_ratio: Dict[str, List[float]]
    final_ratio: Dict[str, float]

    def reduction_vs_risk_averse(self, version: str = "with reserve price") -> float:
        """Percent regret-ratio reduction of ``version`` vs the risk-averse baseline."""
        baseline = self.final_ratio.get("risk-averse baseline", 0.0)
        if baseline == 0.0:
            return 0.0
        return 100.0 * (baseline - self.final_ratio[version]) / baseline

    def format(self) -> str:
        """Printable rendering of the series."""
        header = "Fig. 5(a): noisy linear query, n = %d (T = %d)" % (self.dimension, self.rounds)
        body = format_series_table(self.checkpoints, self.regret_ratio, value_label="regret ratio")
        return header + "\n" + body


def run_fig5a(
    dimension: int = 100,
    rounds: int = 20_000,
    owner_count: int = 300,
    delta: float = 0.01,
    seed: int = 11,
    checkpoint_count: int = 12,
    executor: str = "auto",
    max_workers: Optional[int] = None,
) -> Fig5aResult:
    """Regenerate the Fig. 5(a) regret-ratio series."""
    config = NoisyLinearQueryConfig(
        dimension=dimension, rounds=rounds, owner_count=owner_count, delta=delta, seed=seed
    )
    environment = build_noisy_query_environment(config)
    simulations = run_versions(
        environment,
        versions=ALGORITHM_VERSIONS,
        include_risk_averse=True,
        executor=executor,
        max_workers=max_workers,
    )
    checkpoints = checkpoints_for(rounds, checkpoint_count)
    series: Dict[str, List[float]] = {}
    finals: Dict[str, float] = {}
    for version, result in simulations.items():
        curve = result.regret_ratio_curve()
        series[version] = [float(curve[c - 1]) for c in checkpoints]
        finals[version] = float(curve[-1])
    return Fig5aResult(
        dimension=dimension,
        rounds=rounds,
        checkpoints=checkpoints,
        regret_ratio=series,
        final_ratio=finals,
    )


# --------------------------------------------------------------------------- #
# Fig. 5(b): accommodation rental, log-linear model
# --------------------------------------------------------------------------- #


@dataclass
class Fig5bResult:
    """Regret-ratio series of the accommodation-rental application."""

    rounds: int
    checkpoints: List[int]
    regret_ratio: Dict[str, List[float]]
    final_ratio: Dict[str, float]
    risk_averse_ratio: Dict[float, float]
    test_mse: float

    def format(self) -> str:
        """Printable rendering of the series."""
        header = "Fig. 5(b): accommodation rental (T = %d, OLS test MSE %.3f)" % (
            self.rounds,
            self.test_mse,
        )
        body = format_series_table(self.checkpoints, self.regret_ratio, value_label="regret ratio")
        baseline_lines = [
            "risk-averse baseline at log-ratio %.1f: regret ratio %.4f" % (ratio, value)
            for ratio, value in sorted(self.risk_averse_ratio.items())
        ]
        return "\n".join([header, body] + baseline_lines)


def run_fig5b(
    listing_count: int = 10_000,
    reserve_log_ratios: Sequence[float] = (0.4, 0.6, 0.8),
    dimension: int = 55,
    seed: int = 13,
    checkpoint_count: int = 12,
    low_dimension_variant: Optional[int] = 16,
    executor: str = "auto",
    max_workers: Optional[int] = None,
) -> Fig5bResult:
    """Regenerate the Fig. 5(b) regret-ratio series.

    The figure is a sparse run matrix — the pure version runs on one listings
    stream, the reserve version and the risk-averse baseline on one scenario
    per reserve ratio, plus the optional low-dimension variant — so the cells
    are declared individually rather than as a full cross product.

    Parameters
    ----------
    low_dimension_variant:
        When set, an additional series is produced with the listing feature
        dimension reduced to this value (amenity indicator columns dropped).
        The paper's few-percent final regret ratios require the exploration
        phase to be a small fraction of the horizon, which at ``n = 55`` and
        laptop-scale horizons it is not; the low-dimension variant shows the
        mechanism does reach that regime once exploration fits the horizon
        (see EXPERIMENTS.md for the discussion).
    """
    series: Dict[str, List[float]] = {}
    finals: Dict[str, float] = {}
    risk_averse: Dict[float, float] = {}
    checkpoints = checkpoints_for(listing_count, checkpoint_count)

    def _accommodation_scenario(config: AccommodationConfig, name: str):
        return build_accommodation_environment(config).as_scenario(name)

    matrix = RunMatrix()
    for version in ("pure version", "with reserve price", RISK_AVERSE):
        matrix.add_pricer(version, VersionPricerFactory(version))

    # Pure version: the reserve price is ignored by the pricer but kept in the
    # environment (it defines the regret of Equation (1)); the paper plots one
    # pure curve, generated on the same listings stream.
    pure_config = AccommodationConfig(
        listing_count=listing_count,
        dimension=dimension,
        reserve_log_ratio=min(reserve_log_ratios),
        seed=seed,
    )
    matrix.add_scenario("pure", functools.partial(_accommodation_scenario, pure_config, "pure"))
    matrix.add_cell("pure", "pure version")

    # Scenario keys carry the sweep index so ratios that collide at "%.1f"
    # (e.g. 0.61 and 0.64) still get their own cells.
    ratio_keys = {}
    for index, ratio in enumerate(reserve_log_ratios):
        config = AccommodationConfig(
            listing_count=listing_count,
            dimension=dimension,
            reserve_log_ratio=ratio,
            seed=seed,
        )
        key = "r=%.1f/%d" % (ratio, index)
        ratio_keys[index] = key
        matrix.add_scenario(key, functools.partial(_accommodation_scenario, config, key))
        matrix.add_cell(key, "with reserve price")
        matrix.add_cell(key, RISK_AVERSE)

    if low_dimension_variant is not None:
        config = AccommodationConfig(
            listing_count=listing_count,
            dimension=low_dimension_variant,
            include_amenities=False,
            reserve_log_ratio=0.6,
            seed=seed,
        )
        matrix.add_scenario(
            "low-dim", functools.partial(_accommodation_scenario, config, "low-dim")
        )
        matrix.add_cell("low-dim", "with reserve price")

    grid = matrix.run(executor=executor, max_workers=max_workers)

    pure_result = grid.get("pure", "pure version")
    test_mse = float(matrix.built_scenarios["pure"].context.metadata["test_mse"])
    curve = pure_result.regret_ratio_curve()
    series["pure version"] = [float(curve[c - 1]) for c in checkpoints]
    finals["pure version"] = float(curve[-1])

    for index, ratio in enumerate(reserve_log_ratios):
        key = ratio_keys[index]
        label = "with reserve price (r=%.1f)" % ratio
        curve = grid.get(key, "with reserve price").regret_ratio_curve()
        series[label] = [float(curve[c - 1]) for c in checkpoints]
        finals[label] = float(curve[-1])
        risk_averse[ratio] = float(grid.get(key, RISK_AVERSE).regret_ratio)

    if low_dimension_variant is not None:
        label = "with reserve price (r=0.6, n=%d)" % low_dimension_variant
        curve = grid.get("low-dim", "with reserve price").regret_ratio_curve()
        series[label] = [float(curve[c - 1]) for c in checkpoints]
        finals[label] = float(curve[-1])

    return Fig5bResult(
        rounds=listing_count,
        checkpoints=checkpoints,
        regret_ratio=series,
        final_ratio=finals,
        risk_averse_ratio=risk_averse,
        test_mse=test_mse,
    )


# --------------------------------------------------------------------------- #
# Fig. 5(c): impression pricing, logistic model
# --------------------------------------------------------------------------- #


@dataclass
class Fig5cResult:
    """Regret-ratio series of the impression application."""

    rounds: int
    checkpoints: List[int]
    regret_ratio: Dict[str, List[float]]
    final_ratio: Dict[str, float]
    nonzero_weights: Dict[str, int]
    holdout_log_loss: Dict[str, float]

    def format(self) -> str:
        """Printable rendering of the series."""
        header = "Fig. 5(c): impression pricing (T = %d)" % self.rounds
        body = format_series_table(self.checkpoints, self.regret_ratio, value_label="regret ratio")
        extras = [
            "%s: %d non-zero weights, holdout log loss %.3f"
            % (label, self.nonzero_weights[label], self.holdout_log_loss[label])
            for label in self.regret_ratio
        ]
        return "\n".join([header, body] + extras)


def run_fig5c(
    impression_count: int = 20_000,
    training_count: int = 20_000,
    dimensions: Sequence[int] = (128, 1024),
    seed: int = 17,
    checkpoint_count: int = 12,
    executor: str = "auto",
    max_workers: Optional[int] = None,
) -> Fig5cResult:
    """Regenerate the Fig. 5(c) regret-ratio series (sparse and dense cases).

    One run-matrix scenario per (hashing dimension, density) case, all replayed
    by the pure version.
    """
    series: Dict[str, List[float]] = {}
    finals: Dict[str, float] = {}
    nonzeros: Dict[str, int] = {}
    losses: Dict[str, float] = {}
    checkpoints = checkpoints_for(impression_count, checkpoint_count)

    def _impression_scenario(config: ImpressionConfig, name: str):
        return build_impression_environment(config).as_scenario(name)

    matrix = RunMatrix()
    matrix.add_pricer("pure version", VersionPricerFactory("pure version"))
    labels: List[str] = []
    for dimension in dimensions:
        for dense in (False, True):
            config = ImpressionConfig(
                impression_count=impression_count,
                training_count=training_count,
                dimension=dimension,
                dense=dense,
                seed=seed,
            )
            label = "n=%d (%s)" % (dimension, "dense" if dense else "sparse")
            labels.append(label)
            matrix.add_scenario(label, functools.partial(_impression_scenario, config, label))
            matrix.add_cell(label, "pure version")
    grid = matrix.run(executor=executor, max_workers=max_workers)

    for label in labels:
        result = grid.get(label, "pure version")
        environment = matrix.built_scenarios[label].context
        curve = result.regret_ratio_curve()
        series[label] = [float(curve[c - 1]) for c in checkpoints]
        finals[label] = float(curve[-1])
        nonzeros[label] = int(environment.metadata["nonzero_weights"])
        losses[label] = float(environment.metadata["holdout_log_loss"])

    return Fig5cResult(
        rounds=impression_count,
        checkpoints=checkpoints,
        regret_ratio=series,
        final_ratio=finals,
        nonzero_weights=nonzeros,
        holdout_log_loss=losses,
    )
