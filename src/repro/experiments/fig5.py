"""Fig. 5: regret ratios for the three application instances.

* Fig. 5(a): regret ratios of the four algorithm versions and the risk-averse
  baseline for the noisy-linear-query application at ``n = 100``,
* Fig. 5(b): regret ratios of the pure version and the versions with reserve
  price for the accommodation-rental application at reserve/market log ratios
  ``r ∈ {0.4, 0.6, 0.8}``, plus the risk-averse baseline at each ratio,
* Fig. 5(c): regret ratios of the pure version for the impression application
  in the sparse and dense cases at hashing dimensions 128 and 1024.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.apps.accommodation import AccommodationConfig, build_accommodation_environment
from repro.apps.common import ALGORITHM_VERSIONS, run_versions
from repro.apps.impression import ImpressionConfig, build_impression_environment
from repro.apps.noisy_linear_query import NoisyLinearQueryConfig, build_noisy_query_environment
from repro.experiments.reporting import checkpoints_for, format_series_table


# --------------------------------------------------------------------------- #
# Fig. 5(a): noisy linear query, n = 100
# --------------------------------------------------------------------------- #


@dataclass
class Fig5aResult:
    """Regret-ratio series of the noisy-linear-query application."""

    dimension: int
    rounds: int
    checkpoints: List[int]
    regret_ratio: Dict[str, List[float]]
    final_ratio: Dict[str, float]

    def reduction_vs_risk_averse(self, version: str = "with reserve price") -> float:
        """Percent regret-ratio reduction of ``version`` vs the risk-averse baseline."""
        baseline = self.final_ratio.get("risk-averse baseline", 0.0)
        if baseline == 0.0:
            return 0.0
        return 100.0 * (baseline - self.final_ratio[version]) / baseline

    def format(self) -> str:
        """Printable rendering of the series."""
        header = "Fig. 5(a): noisy linear query, n = %d (T = %d)" % (self.dimension, self.rounds)
        body = format_series_table(self.checkpoints, self.regret_ratio, value_label="regret ratio")
        return header + "\n" + body


def run_fig5a(
    dimension: int = 100,
    rounds: int = 20_000,
    owner_count: int = 300,
    delta: float = 0.01,
    seed: int = 11,
    checkpoint_count: int = 12,
) -> Fig5aResult:
    """Regenerate the Fig. 5(a) regret-ratio series."""
    config = NoisyLinearQueryConfig(
        dimension=dimension, rounds=rounds, owner_count=owner_count, delta=delta, seed=seed
    )
    environment = build_noisy_query_environment(config)
    simulations = run_versions(
        environment, versions=ALGORITHM_VERSIONS, include_risk_averse=True
    )
    checkpoints = checkpoints_for(rounds, checkpoint_count)
    series: Dict[str, List[float]] = {}
    finals: Dict[str, float] = {}
    for version, result in simulations.items():
        curve = result.regret_ratio_curve()
        series[version] = [float(curve[c - 1]) for c in checkpoints]
        finals[version] = float(curve[-1])
    return Fig5aResult(
        dimension=dimension,
        rounds=rounds,
        checkpoints=checkpoints,
        regret_ratio=series,
        final_ratio=finals,
    )


# --------------------------------------------------------------------------- #
# Fig. 5(b): accommodation rental, log-linear model
# --------------------------------------------------------------------------- #


@dataclass
class Fig5bResult:
    """Regret-ratio series of the accommodation-rental application."""

    rounds: int
    checkpoints: List[int]
    regret_ratio: Dict[str, List[float]]
    final_ratio: Dict[str, float]
    risk_averse_ratio: Dict[float, float]
    test_mse: float

    def format(self) -> str:
        """Printable rendering of the series."""
        header = "Fig. 5(b): accommodation rental (T = %d, OLS test MSE %.3f)" % (
            self.rounds,
            self.test_mse,
        )
        body = format_series_table(self.checkpoints, self.regret_ratio, value_label="regret ratio")
        baseline_lines = [
            "risk-averse baseline at log-ratio %.1f: regret ratio %.4f" % (ratio, value)
            for ratio, value in sorted(self.risk_averse_ratio.items())
        ]
        return "\n".join([header, body] + baseline_lines)


def run_fig5b(
    listing_count: int = 10_000,
    reserve_log_ratios: Sequence[float] = (0.4, 0.6, 0.8),
    dimension: int = 55,
    seed: int = 13,
    checkpoint_count: int = 12,
    low_dimension_variant: Optional[int] = 16,
) -> Fig5bResult:
    """Regenerate the Fig. 5(b) regret-ratio series.

    Parameters
    ----------
    low_dimension_variant:
        When set, an additional series is produced with the listing feature
        dimension reduced to this value (amenity indicator columns dropped).
        The paper's few-percent final regret ratios require the exploration
        phase to be a small fraction of the horizon, which at ``n = 55`` and
        laptop-scale horizons it is not; the low-dimension variant shows the
        mechanism does reach that regime once exploration fits the horizon
        (see EXPERIMENTS.md for the discussion).
    """
    series: Dict[str, List[float]] = {}
    finals: Dict[str, float] = {}
    risk_averse: Dict[float, float] = {}
    checkpoints = checkpoints_for(listing_count, checkpoint_count)
    test_mse = float("nan")

    # Pure version: the reserve price is ignored by the pricer but kept in the
    # environment (it defines the regret of Equation (1)); the paper plots one
    # pure curve, generated on the same listings stream.
    pure_config = AccommodationConfig(
        listing_count=listing_count,
        dimension=dimension,
        reserve_log_ratio=min(reserve_log_ratios),
        seed=seed,
    )
    pure_env = build_accommodation_environment(pure_config)
    test_mse = float(pure_env.metadata["test_mse"])
    pure_result = run_versions(pure_env, versions=("pure version",))["pure version"]
    curve = pure_result.regret_ratio_curve()
    series["pure version"] = [float(curve[c - 1]) for c in checkpoints]
    finals["pure version"] = float(curve[-1])

    for ratio in reserve_log_ratios:
        config = AccommodationConfig(
            listing_count=listing_count,
            dimension=dimension,
            reserve_log_ratio=ratio,
            seed=seed,
        )
        environment = build_accommodation_environment(config)
        simulations = run_versions(
            environment, versions=("with reserve price",), include_risk_averse=True
        )
        label = "with reserve price (r=%.1f)" % ratio
        curve = simulations["with reserve price"].regret_ratio_curve()
        series[label] = [float(curve[c - 1]) for c in checkpoints]
        finals[label] = float(curve[-1])
        risk_averse[ratio] = float(simulations["risk-averse baseline"].regret_ratio)

    if low_dimension_variant is not None:
        config = AccommodationConfig(
            listing_count=listing_count,
            dimension=low_dimension_variant,
            include_amenities=False,
            reserve_log_ratio=0.6,
            seed=seed,
        )
        environment = build_accommodation_environment(config)
        result = run_versions(environment, versions=("with reserve price",))["with reserve price"]
        label = "with reserve price (r=0.6, n=%d)" % low_dimension_variant
        curve = result.regret_ratio_curve()
        series[label] = [float(curve[c - 1]) for c in checkpoints]
        finals[label] = float(curve[-1])

    return Fig5bResult(
        rounds=listing_count,
        checkpoints=checkpoints,
        regret_ratio=series,
        final_ratio=finals,
        risk_averse_ratio=risk_averse,
        test_mse=test_mse,
    )


# --------------------------------------------------------------------------- #
# Fig. 5(c): impression pricing, logistic model
# --------------------------------------------------------------------------- #


@dataclass
class Fig5cResult:
    """Regret-ratio series of the impression application."""

    rounds: int
    checkpoints: List[int]
    regret_ratio: Dict[str, List[float]]
    final_ratio: Dict[str, float]
    nonzero_weights: Dict[str, int]
    holdout_log_loss: Dict[str, float]

    def format(self) -> str:
        """Printable rendering of the series."""
        header = "Fig. 5(c): impression pricing (T = %d)" % self.rounds
        body = format_series_table(self.checkpoints, self.regret_ratio, value_label="regret ratio")
        extras = [
            "%s: %d non-zero weights, holdout log loss %.3f"
            % (label, self.nonzero_weights[label], self.holdout_log_loss[label])
            for label in self.regret_ratio
        ]
        return "\n".join([header, body] + extras)


def run_fig5c(
    impression_count: int = 20_000,
    training_count: int = 20_000,
    dimensions: Sequence[int] = (128, 1024),
    seed: int = 17,
    checkpoint_count: int = 12,
) -> Fig5cResult:
    """Regenerate the Fig. 5(c) regret-ratio series (sparse and dense cases)."""
    series: Dict[str, List[float]] = {}
    finals: Dict[str, float] = {}
    nonzeros: Dict[str, int] = {}
    losses: Dict[str, float] = {}
    checkpoints = checkpoints_for(impression_count, checkpoint_count)

    for dimension in dimensions:
        for dense in (False, True):
            config = ImpressionConfig(
                impression_count=impression_count,
                training_count=training_count,
                dimension=dimension,
                dense=dense,
                seed=seed,
            )
            environment = build_impression_environment(config)
            result = run_versions(environment, versions=("pure version",))["pure version"]
            label = "n=%d (%s)" % (dimension, "dense" if dense else "sparse")
            curve = result.regret_ratio_curve()
            series[label] = [float(curve[c - 1]) for c in checkpoints]
            finals[label] = float(curve[-1])
            nonzeros[label] = int(environment.metadata["nonzero_weights"])
            losses[label] = float(environment.metadata["holdout_log_loss"])

    return Fig5cResult(
        rounds=impression_count,
        checkpoints=checkpoints,
        regret_ratio=series,
        final_ratio=finals,
        nonzero_weights=nonzeros,
        holdout_log_loss=losses,
    )
