"""Exporting experiment outputs to CSV / JSON files.

The figure/table modules return plain dataclasses; these helpers persist them
so downstream plotting or spreadsheet tooling can consume the reproduced
series without re-running the simulations.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Mapping, Sequence


def write_series_csv(
    path: str,
    checkpoints: Sequence[int],
    series: Mapping[str, Sequence[float]],
    index_label: str = "rounds",
) -> str:
    """Write named series sampled at common checkpoints as a CSV file.

    Returns the path written (directories are created as needed).
    """
    _ensure_parent(path)
    names = list(series.keys())
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([index_label] + names)
        for index, checkpoint in enumerate(checkpoints):
            row = [checkpoint]
            for name in names:
                values = series[name]
                row.append(values[index] if index < len(values) else "")
            writer.writerow(row)
    return path


def write_rows_csv(path: str, headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Write a plain table (headers + rows) as a CSV file."""
    _ensure_parent(path)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(list(row))
    return path


def write_json(path: str, payload) -> str:
    """Write any JSON-serialisable payload (floats/ints/strings/dicts/lists)."""
    _ensure_parent(path)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
    return path


def read_series_csv(path: str):
    """Read a CSV written by :func:`write_series_csv` back into (checkpoints, series)."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        names = header[1:]
        checkpoints = []
        series = {name: [] for name in names}
        for row in reader:
            checkpoints.append(int(float(row[0])))
            for name, cell in zip(names, row[1:]):
                series[name].append(float(cell) if cell != "" else float("nan"))
    return checkpoints, series


def _ensure_parent(path: str) -> None:
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
