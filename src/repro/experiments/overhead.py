"""Section V-D: online latency and memory overhead of the three applications.

The paper reports millisecond-scale per-round latency and <160 MB memory
overhead on a Broadwell-E workstation.  On our side:

* latency is measured as the wall-clock time spent inside the pricer
  (``propose`` + ``update``) per round,
* memory is reported both as the exact byte count of the pricer's state
  (``O(n²)``: the ellipsoid shape matrix plus its center) and as the process
  resident set size when procfs is available,
* as an ablation, the exact polytope knowledge set (two LPs per round) can be
  timed against the ellipsoid representation to substantiate the paper's
  argument that the raw polytope is too slow for online use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.apps.accommodation import AccommodationConfig, build_accommodation_environment
from repro.apps.common import AppEnvironment, build_pricer_for_version
from repro.apps.impression import ImpressionConfig, build_impression_environment
from repro.apps.noisy_linear_query import NoisyLinearQueryConfig, build_noisy_query_environment
from repro.core.simulation import MarketSimulator
from repro.experiments.reporting import format_table
from repro.utils.metrics import LatencySummary, pricer_memory


@dataclass
class OverheadReport:
    """Per-application latency / memory measurements."""

    application: str
    version: str
    dimension: int
    rounds: int
    mean_latency_ms: float
    p95_latency_ms: float
    max_latency_ms: float
    state_megabytes: float
    process_megabytes: Optional[float]

    def as_cells(self) -> List:
        """Row cells for the printable table."""
        return [
            self.application,
            self.version,
            self.dimension,
            self.rounds,
            "%.4f" % self.mean_latency_ms,
            "%.4f" % self.p95_latency_ms,
            "%.4f" % self.max_latency_ms,
            "%.4f" % self.state_megabytes,
            "%.1f" % self.process_megabytes if self.process_megabytes is not None else "n/a",
        ]


def measure_environment(
    environment: AppEnvironment, version: str, knowledge: str = "ellipsoid"
) -> OverheadReport:
    """Measure latency and memory for one pricer version over one environment.

    Latency tracking forces the engine's sequential loop (the batched paths
    have no per-round boundary to time), so the numbers measure exactly the
    online propose+update cost the paper reports; the cached arrival batch is
    shared across versions measured on the same environment.
    """
    pricer = build_pricer_for_version(environment, version, knowledge=knowledge)
    simulator = MarketSimulator(model=environment.model, pricer=pricer, track_latency=True)
    result = simulator.run(environment.arrival_batch())
    latency = LatencySummary.from_seconds(result.latency.samples_seconds)
    memory = pricer_memory(pricer)
    return OverheadReport(
        application=environment.name,
        version=version if knowledge == "ellipsoid" else version + " [polytope]",
        dimension=environment.dimension,
        rounds=environment.rounds,
        mean_latency_ms=latency.mean_ms,
        p95_latency_ms=latency.p95_ms,
        max_latency_ms=latency.max_ms,
        state_megabytes=memory.state_megabytes,
        process_megabytes=memory.process_megabytes,
    )


def run_overhead(
    noisy_query_rounds: int = 2_000,
    noisy_query_dimension: int = 100,
    listing_count: int = 2_000,
    impression_count: int = 2_000,
    impression_dimension: int = 1024,
    owner_count: int = 300,
    seed: int = 23,
    include_polytope_ablation: bool = False,
    polytope_rounds: int = 200,
) -> List[OverheadReport]:
    """Measure overheads for the three applications (Section V-D).

    The polytope ablation (two LPs per round) is optional and run over a much
    shorter horizon because it is orders of magnitude slower.
    """
    reports: List[OverheadReport] = []

    noisy_env = build_noisy_query_environment(
        NoisyLinearQueryConfig(
            dimension=noisy_query_dimension,
            rounds=noisy_query_rounds,
            owner_count=owner_count,
            seed=seed,
        )
    )
    reports.append(measure_environment(noisy_env, "with reserve price"))

    accommodation_env = build_accommodation_environment(
        AccommodationConfig(listing_count=listing_count, reserve_log_ratio=0.6, seed=seed)
    )
    reports.append(measure_environment(accommodation_env, "with reserve price"))

    for dense in (False, True):
        impression_env = build_impression_environment(
            ImpressionConfig(
                impression_count=impression_count,
                training_count=impression_count,
                dimension=impression_dimension,
                dense=dense,
                seed=seed,
            )
        )
        reports.append(measure_environment(impression_env, "pure version"))

    if include_polytope_ablation:
        small_env = build_noisy_query_environment(
            NoisyLinearQueryConfig(
                dimension=min(20, noisy_query_dimension),
                rounds=polytope_rounds,
                owner_count=owner_count,
                seed=seed,
            )
        )
        reports.append(measure_environment(small_env, "with reserve price", knowledge="ellipsoid"))
        reports.append(measure_environment(small_env, "with reserve price", knowledge="polytope"))

    return reports


def format_overhead(reports: Sequence[OverheadReport]) -> str:
    """Printable rendering of the overhead table."""
    headers = [
        "application",
        "version",
        "n",
        "rounds",
        "mean ms",
        "p95 ms",
        "max ms",
        "state MB",
        "process MB",
    ]
    return format_table(headers, [report.as_cells() for report in reports])
