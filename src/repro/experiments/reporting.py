"""Plain-text rendering of experiment outputs.

The benches print the same rows / series the paper reports; these helpers keep
the formatting consistent (fixed-width columns, one row per series point).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence], precision: int = 4) -> str:
    """Render rows as a fixed-width text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered_rows.append([_render_cell(cell, precision) for cell in row])
    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series_table(
    checkpoints: Sequence[int],
    series: Mapping[str, Sequence[float]],
    value_label: str = "value",
    precision: int = 4,
) -> str:
    """Render several named series sampled at common checkpoints.

    Produces one row per checkpoint with one column per series — the layout
    used for the cumulative-regret and regret-ratio figures.
    """
    headers = ["rounds"] + list(series.keys())
    rows = []
    for index, checkpoint in enumerate(checkpoints):
        row = [checkpoint]
        for name in series:
            values = series[name]
            row.append(values[index] if index < len(values) else float("nan"))
        rows.append(row)
    title = "%s at checkpoints" % value_label
    return title + "\n" + format_table(headers, rows, precision=precision)


def _render_cell(cell, precision: int) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        return "%.*g" % (precision + 2, cell) if abs(cell) < 1e-3 and cell != 0 else "%.*f" % (precision, cell)
    return str(cell)


def checkpoints_for(total_rounds: int, count: int = 12) -> List[int]:
    """Logarithmically spaced checkpoints in ``[1, total_rounds]``."""
    if total_rounds < 1:
        raise ValueError("total_rounds must be positive, got %d" % total_rounds)
    if count < 1:
        raise ValueError("count must be positive, got %d" % count)
    import numpy as np

    raw = np.unique(
        np.round(np.logspace(0, np.log10(total_rounds), num=count)).astype(int)
    )
    return [int(v) for v in raw if 1 <= v <= total_rounds]
