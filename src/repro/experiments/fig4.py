"""Fig. 4: cumulative regret of the four algorithm versions (noisy linear query).

The paper plots the cumulative regret of the pure version, the version with
uncertainty, the version with reserve price, and the version with reserve
price and uncertainty, for feature dimensions ``n ∈ {1, 20, 40, 60, 80, 100}``
with horizons of ``10²``–``10⁵`` rounds.  :func:`run_fig4` regenerates those
series (at a configurable scale) and reports the cumulative regret of each
version at logarithmically spaced checkpoints.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.apps.common import ALGORITHM_VERSIONS, VersionPricerFactory
from repro.apps.noisy_linear_query import NoisyLinearQueryConfig, build_noisy_query_scenario
from repro.engine import RunMatrix
from repro.experiments.reporting import checkpoints_for, format_series_table

#: The horizons the paper pairs with each dimension in Fig. 4 / Table I.
PAPER_ROUNDS_BY_DIMENSION = {1: 100, 20: 10_000, 40: 10_000, 60: 100_000, 80: 100_000, 100: 100_000}


@dataclass
class Fig4Result:
    """Cumulative-regret series for one feature dimension."""

    dimension: int
    rounds: int
    checkpoints: List[int]
    cumulative_regret: Dict[str, List[float]]
    final_regret: Dict[str, float]
    reserve_reduction_percent: float
    uncertainty_increase_percent: float

    def format(self) -> str:
        """Printable rendering of the series (one column per version)."""
        header = "Fig. 4, n = %d (T = %d)" % (self.dimension, self.rounds)
        body = format_series_table(
            self.checkpoints, self.cumulative_regret, value_label="cumulative regret"
        )
        summary = (
            "reserve price reduces cumulative regret by %.2f%% (vs pure); "
            "uncertainty increases it by %.2f%% (vs pure)"
            % (self.reserve_reduction_percent, self.uncertainty_increase_percent)
        )
        return "\n".join([header, body, summary])


def run_fig4(
    dimensions: Sequence[int] = (1, 20, 40, 60, 80, 100),
    rounds: Optional[int] = None,
    owner_count: int = 300,
    delta: float = 0.01,
    seed: int = 7,
    checkpoint_count: int = 12,
    executor: str = "auto",
    max_workers: Optional[int] = None,
) -> Dict[int, Fig4Result]:
    """Regenerate the Fig. 4 series.

    The (dimension × version) grid is declared as one
    :class:`~repro.engine.RunMatrix`: each dimension's market is materialised
    once and all four algorithm versions replay it, with the cells fanned
    across workers when the workload warrants it.

    Parameters
    ----------
    dimensions:
        Feature dimensions to sweep (the paper uses 1, 20, 40, 60, 80, 100).
    rounds:
        Common horizon for every dimension; when ``None`` the paper's
        per-dimension horizon (capped at 20,000 for laptop-scale runs) is used.
    owner_count / delta / seed:
        Passed through to :class:`NoisyLinearQueryConfig`.
    checkpoint_count:
        Number of logarithmically spaced checkpoints per series.
    executor / max_workers:
        Run-matrix execution strategy (see :meth:`repro.engine.RunMatrix.run`).
    """
    matrix = RunMatrix()
    horizons: Dict[int, int] = {}
    for dimension in dimensions:
        horizon = rounds if rounds is not None else min(
            PAPER_ROUNDS_BY_DIMENSION.get(dimension, 10_000), 20_000
        )
        horizons[dimension] = horizon
        config = NoisyLinearQueryConfig(
            dimension=dimension,
            rounds=horizon,
            owner_count=owner_count,
            delta=delta,
            seed=seed + dimension,
        )
        matrix.add_scenario(
            "n=%d" % dimension, functools.partial(build_noisy_query_scenario, config)
        )
    for version in ALGORITHM_VERSIONS:
        matrix.add_pricer(version, VersionPricerFactory(version))
    matrix.add_cross()
    grid = matrix.run(executor=executor, max_workers=max_workers)

    results: Dict[int, Fig4Result] = {}
    for dimension in dimensions:
        horizon = horizons[dimension]
        simulations = grid.by_scenario("n=%d" % dimension)
        checkpoints = checkpoints_for(horizon, checkpoint_count)
        series: Dict[str, List[float]] = {}
        finals: Dict[str, float] = {}
        for version, result in simulations.items():
            curve = result.cumulative_regret_curve()
            series[version] = [float(curve[c - 1]) for c in checkpoints]
            finals[version] = float(curve[-1])
        reserve_reduction = _percent_reduction(
            finals["pure version"], finals["with reserve price"]
        )
        uncertainty_increase = -_percent_reduction(
            finals["pure version"], finals["with uncertainty"]
        )
        results[dimension] = Fig4Result(
            dimension=dimension,
            rounds=horizon,
            checkpoints=checkpoints,
            cumulative_regret=series,
            final_regret=finals,
            reserve_reduction_percent=reserve_reduction,
            uncertainty_increase_percent=uncertainty_increase,
        )
    return results


def _percent_reduction(baseline: float, value: float) -> float:
    if baseline == 0.0:
        return 0.0
    return 100.0 * (baseline - value) / baseline
