"""Cold-start zoom-in: the reserve price's effect on the first rounds.

The paper's headline qualitative finding is that the reserve price mitigates
the cold-start problem of a posted price mechanism: in the first rounds the
knowledge set is wide, the exploratory prices are frequently rejected, and the
additional lower bound supplied by the reserve price both lifts the accepted
prices and deepens the cuts.  This experiment quantifies that effect by
comparing the algorithm versions with and without the reserve constraint over
the earliest rounds only (the left end of Fig. 4 / Fig. 5 curves).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.apps.common import ALGORITHM_VERSIONS, run_versions
from repro.apps.noisy_linear_query import NoisyLinearQueryConfig, build_noisy_query_environment
from repro.experiments.reporting import format_table


@dataclass
class ColdStartResult:
    """Early-round regret ratios of each algorithm version."""

    dimension: int
    window: int
    rounds: int
    early_regret_ratio: Dict[str, float]
    early_cumulative_regret: Dict[str, float]
    final_regret_ratio: Dict[str, float]

    def reserve_cold_start_reduction_percent(self) -> float:
        """Early-window regret reduction of the reserve version vs the pure version."""
        pure = self.early_cumulative_regret.get("pure version", 0.0)
        reserve = self.early_cumulative_regret.get("with reserve price", 0.0)
        if pure <= 0.0:
            return 0.0
        return 100.0 * (pure - reserve) / pure

    def format(self) -> str:
        """Printable rendering of the early-vs-final comparison."""
        headers = ["version", "regret ratio @ %d" % self.window, "regret ratio @ %d" % self.rounds]
        rows = [
            [name, "%.4f" % self.early_regret_ratio[name], "%.4f" % self.final_regret_ratio[name]]
            for name in self.early_regret_ratio
        ]
        table = format_table(headers, rows)
        summary = "reserve price reduces the first-%d-round regret by %.1f%%" % (
            self.window,
            self.reserve_cold_start_reduction_percent(),
        )
        return "Cold start (n = %d)\n%s\n%s" % (self.dimension, table, summary)


def run_cold_start(
    dimension: int = 40,
    rounds: int = 4_000,
    window: int = 200,
    owner_count: int = 300,
    delta: float = 0.01,
    seed: int = 41,
    versions: Sequence[str] = ALGORITHM_VERSIONS,
) -> ColdStartResult:
    """Compare the versions over the first ``window`` rounds and the full horizon."""
    if not 1 <= window <= rounds:
        raise ValueError("window must lie in [1, rounds]")
    config = NoisyLinearQueryConfig(
        dimension=dimension, rounds=rounds, owner_count=owner_count, delta=delta, seed=seed
    )
    environment = build_noisy_query_environment(config)
    simulations = run_versions(environment, versions=versions)

    early_ratio: Dict[str, float] = {}
    early_regret: Dict[str, float] = {}
    final_ratio: Dict[str, float] = {}
    for name, result in simulations.items():
        early_ratio[name] = result.accumulator.ratio_at(window)
        early_regret[name] = float(result.cumulative_regret_curve()[window - 1])
        final_ratio[name] = result.regret_ratio
    return ColdStartResult(
        dimension=dimension,
        window=window,
        rounds=rounds,
        early_regret_ratio=early_ratio,
        early_cumulative_regret=early_regret,
        final_regret_ratio=final_ratio,
    )
