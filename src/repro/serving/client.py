"""Pipelined asyncio client for the quote-serving socket protocol.

:class:`AsyncQuoteClient` keeps **multiple requests outstanding on one
connection**.  Every request frame carries a connection-unique ``id`` tag;
a background reader task correlates each incoming frame back to the future
awaiting it, so responses may arrive in any order (the server answers
quotes when the micro-batch window drains, not in submission order) and
the connection is never idle between request and response.

Two usage levels:

* the ``await``-style operations (:meth:`~AsyncQuoteClient.quote`,
  :meth:`~AsyncQuoteClient.feedback`, ...) look like the blocking
  :class:`~repro.serving.frontend.QuoteSocketClient` but can be driven from
  many concurrent tasks sharing one connection;
* the ``submit_*`` primitives return the :class:`asyncio.Future` directly —
  the open-loop load driver (``scripts/bench_serving.py --net-target-qps``)
  fires thousands of these without awaiting, which is what makes offered
  rate independent of completion rate through the socket.

Failure mapping: ``error`` frames with ``code: "backpressure"`` resolve the
future with :class:`~repro.exceptions.BackpressureError` (the quote was
rejected before submission — resubmitting is safe); other ``error`` frames
become :class:`~repro.exceptions.ServingError` with the drain accounting;
a connection-level failure (EOF, frame-boundary corruption) fails **every**
pending future, so no caller can hang on a dead connection.

:func:`serve_closed_loop_async` is the pipelined client's closed-loop
replay driver — the per-round protocol is identical to
:func:`repro.serving.frontend.serve_closed_loop_socket`, so its transcript
is bit-identical to the offline engine (pinned for every golden family by
``tests/serving/test_async_client.py``).
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional

import numpy as np

from repro.engine.arrivals import MaterializedArrivals
from repro.engine.results import SimulationResult
from repro.engine.streaming import stream_rounds
from repro.engine.transcript import Transcript
from repro.exceptions import ServingError
from repro.serving.frontend import (
    encode_frame,
    error_from_frame,
    read_frame,
    settle_frame_into_transcript,
)
from repro.serving.requests import SessionKey


class AsyncQuoteClient:
    """Asyncio client with pipelining over one frontend connection.

    Construct via :meth:`connect`; use as an async context manager to
    guarantee the reader task and the socket are torn down.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._pending: Dict[int, asyncio.Future] = {}
        self._next_tag = 0
        self._closed = False
        self._failure: Optional[ServingError] = None
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: Optional[str] = None,
        port: Optional[int] = None,
        unix_path: Optional[str] = None,
    ) -> "AsyncQuoteClient":
        """Open a TCP or unix-socket connection to a :class:`QuoteFrontend`."""
        if (unix_path is None) == (host is None) or (
            unix_path is None and port is None
        ):
            raise ValueError("pass exactly one of host/port or unix_path")
        if unix_path is not None:
            reader, writer = await asyncio.open_unix_connection(unix_path)
        else:
            reader, writer = await asyncio.open_connection(host, int(port))
        return cls(reader, writer)

    @property
    def outstanding(self) -> int:
        """Requests sent and not yet answered on this connection."""
        return len(self._pending)

    # -- correlation ----------------------------------------------------- #

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await read_frame(self._reader)
                if frame is None:
                    self._fail_all(ServingError("server closed the connection"))
                    return
                self._deliver(frame)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 — any reader failure kills the link
            self._fail_all(ServingError("connection failed: %s" % exc))

    def _deliver(self, frame: dict) -> None:
        tag = frame.get("id")
        future = self._pending.pop(tag, None) if tag is not None else None
        if future is None or future.done():
            if frame.get("op") == "error" and tag is None:
                # A frame-boundary protocol error: the server hangs up after
                # sending it, so nothing pending can ever be answered.
                self._fail_all(error_from_frame(frame))
            # Anything else without a live future (e.g. a response to a
            # caller that gave up) is dropped — ids are never reused, so it
            # cannot be mistaken for another request's answer.
            return
        if frame.get("op") == "error":
            future.set_exception(error_from_frame(frame))
        else:
            future.set_result(frame)

    def _fail_all(self, exc: ServingError) -> None:
        # Remember the terminal failure: a request submitted *after* the
        # connection died has no reader left to resolve its future, so
        # _submit must refuse it instead of letting the caller hang.
        if self._failure is None:
            self._failure = exc
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    def _submit(self, payload: dict) -> "asyncio.Future":
        if self._closed:
            raise ServingError("client is closed")
        if self._failure is not None:
            raise ServingError("connection is dead: %s" % self._failure)
        self._next_tag += 1
        tag = self._next_tag
        payload["id"] = tag
        future = asyncio.get_running_loop().create_future()
        self._pending[tag] = future
        self._writer.write(encode_frame(payload))
        return future

    @staticmethod
    async def _expect(future: "asyncio.Future", op: str) -> dict:
        frame = await future
        if frame.get("op") != op:
            raise ServingError("expected %r frame, got %r" % (op, frame.get("op")))
        return frame

    # -- pipelining primitives ------------------------------------------- #

    def submit_quote(
        self,
        key: SessionKey,
        features,
        reserve: Optional[float] = None,
    ) -> "asyncio.Future":
        """Fire one quote; the future resolves to its ``quote_result`` dict.

        Returns immediately — pipelining is simply calling this again before
        awaiting.  The future raises :class:`BackpressureError` on a
        frontend rejection and :class:`ServingError` on a drain failure.
        """
        return self._submit(
            {
                "op": "quote",
                "app": key.app,
                "segment": key.segment,
                "features": [float(value) for value in np.asarray(features, dtype=float)],
                "reserve": None if reserve is None else float(reserve),
            }
        )

    def submit_feedback(
        self, key: SessionKey, quote_id: int, accepted: bool
    ) -> "asyncio.Future":
        """Fire one feedback event; the future resolves on ``feedback_ok``."""
        return self._submit(
            {
                "op": "feedback",
                "app": key.app,
                "segment": key.segment,
                "quote_id": int(quote_id),
                "accepted": bool(accepted),
            }
        )

    # -- awaited operations ---------------------------------------------- #

    async def quote(
        self, key: SessionKey, features, reserve: Optional[float] = None
    ) -> dict:
        """Request one quote and await its result frame."""
        return await self._expect(
            self.submit_quote(key, features, reserve=reserve), "quote_result"
        )

    async def feedback(self, key: SessionKey, quote_id: int, accepted: bool) -> None:
        await self._expect(self.submit_feedback(key, quote_id, accepted), "feedback_ok")

    async def flush(self) -> int:
        frame = await self._expect(self._submit({"op": "flush"}), "flush_ok")
        return int(frame["drained"])

    async def stats(self) -> dict:
        return await self._expect(self._submit({"op": "stats"}), "stats")

    async def ping(self) -> None:
        await self._expect(self._submit({"op": "ping"}), "pong")

    async def drain(self) -> None:
        """Flow-control the outgoing buffer (submit-heavy open loops)."""
        await self._writer.drain()

    # -- lifecycle -------------------------------------------------------- #

    async def close(self) -> None:
        """Tear down the reader task and the socket; fail anything pending."""
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):  # noqa: BLE001
            pass
        self._fail_all(ServingError("client closed with requests outstanding"))
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def __aenter__(self) -> "AsyncQuoteClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


async def serve_closed_loop_async(
    client: AsyncQuoteClient,
    key: SessionKey,
    materialized: MaterializedArrivals,
    pricer_name: Optional[str] = None,
) -> SimulationResult:
    """Drive one session through a materialised market over the async client.

    The asyncio twin of :func:`repro.serving.frontend.
    serve_closed_loop_socket`: one quote per round, the sale settled against
    the realised market value with the engine's scalar comparison, feedback
    awaited before the next round.  Because the per-round protocol — and the
    JSON float round-trip — is identical, the resulting transcript is
    bit-identical to the offline engine.
    """
    transcript = Transcript.for_materialized(materialized)
    for round_ in stream_rounds(materialized):
        result = await client.quote(key, round_.features, reserve=round_.reserve)
        sold = settle_frame_into_transcript(
            transcript, round_.index, result, round_.market_value
        )
        await client.feedback(key, result["quote_id"], sold)
    transcript.finalize_regrets()
    return SimulationResult(
        pricer_name=pricer_name if pricer_name is not None else str(key),
        transcript=transcript,
    )
