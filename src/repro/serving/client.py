"""Pipelined asyncio client for the quote-serving socket protocol.

:class:`AsyncQuoteClient` keeps **multiple requests outstanding on one
connection**.  Every request frame carries a connection-unique ``id`` tag;
a background reader task correlates each incoming frame back to the future
awaiting it, so responses may arrive in any order (the server answers
quotes when the micro-batch window drains, not in submission order) and
the connection is never idle between request and response.

Two usage levels:

* the ``await``-style operations (:meth:`~AsyncQuoteClient.quote`,
  :meth:`~AsyncQuoteClient.feedback`, ...) look like the blocking
  :class:`~repro.serving.frontend.QuoteSocketClient` but can be driven from
  many concurrent tasks sharing one connection;
* the ``submit_*`` primitives return the :class:`asyncio.Future` directly —
  the open-loop load driver (``scripts/bench_serving.py --net-target-qps``)
  fires thousands of these without awaiting, which is what makes offered
  rate independent of completion rate through the socket.

**Batching.**  ``connect(wire=2)`` negotiates the binary columnar v2
protocol (:mod:`repro.serving.wire`); against an old server the client
silently stays on JSON v1.  ``connect(coalesce_writes=True)`` additionally
stages ``submit_quote``/``submit_feedback`` payloads and flushes them at
the end of the current event-loop tick — consecutive runs of the same kind
leave as **one** frame (v2) or one contiguous buffer (v1), so an open loop
that fires a burst of submits per tick pays one syscall and, server-side,
one executor hop for the whole burst.  :meth:`submit_quotes` /
:meth:`submit_feedbacks` batch explicitly.  Coalescing never reorders:
only adjacent same-kind payloads merge, so a closed loop (feedback before
the next quote) is preserved exactly.

Failure mapping: ``error`` frames with ``code: "backpressure"`` resolve the
future with :class:`~repro.exceptions.BackpressureError` (the quote was
rejected before submission — resubmitting is safe); other ``error`` frames
become :class:`~repro.exceptions.ServingError` with the drain accounting;
a connection-level failure (EOF, frame-boundary corruption) fails **every**
pending future, so no caller can hang on a dead connection.

:func:`serve_closed_loop_async` is the pipelined client's closed-loop
replay driver — the per-round protocol is identical to
:func:`repro.serving.frontend.serve_closed_loop_socket`, so its transcript
is bit-identical to the offline engine (pinned for every golden family by
``tests/serving/test_async_client.py``, and on the v2 path by
``tests/serving/test_wire_v2.py``).
"""

from __future__ import annotations

import asyncio
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.arrivals import MaterializedArrivals
from repro.engine.results import SimulationResult
from repro.engine.streaming import stream_rounds
from repro.engine.transcript import Transcript
from repro.exceptions import ServingError
from repro.serving.frontend import (
    error_from_frame,
    settle_frame_into_transcript,
)
from repro.serving.requests import SessionKey
from repro.serving.wire import (
    WIRE_V1,
    WIRE_V2,
    FrameDecoder,
    encode_feedback_batch,
    encode_frame,
    encode_frames,
    encode_quote_batch,
)

#: Socket read size of the client reader task.
READ_CHUNK_BYTES = 256 * 1024


class AsyncQuoteClient:
    """Asyncio client with pipelining over one frontend connection.

    Construct via :meth:`connect`; use as an async context manager to
    guarantee the reader task and the socket are torn down.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._pending: Dict[int, asyncio.Future] = {}
        self._next_tag = 0
        self._closed = False
        self._failure: Optional[ServingError] = None
        self._wire = WIRE_V1
        self._coalesce = False
        #: Payloads staged for the end-of-tick flush: ``(kind, payload)``.
        self._staged: List[Tuple[str, dict]] = []
        self._flush_scheduled = False
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: Optional[str] = None,
        port: Optional[int] = None,
        unix_path: Optional[str] = None,
        wire: int = WIRE_V1,
        coalesce_writes: bool = False,
    ) -> "AsyncQuoteClient":
        """Open a TCP or unix-socket connection to a :class:`QuoteFrontend`.

        ``wire=2`` negotiates the binary v2 protocol (falling back to v1
        against an old server); ``coalesce_writes=True`` batches the
        ``submit_*`` primitives per event-loop tick.
        """
        if (unix_path is None) == (host is None) or (
            unix_path is None and port is None
        ):
            raise ValueError("pass exactly one of host/port or unix_path")
        if unix_path is not None:
            reader, writer = await asyncio.open_unix_connection(unix_path)
        else:
            reader, writer = await asyncio.open_connection(host, int(port))
        client = cls(reader, writer)
        client._coalesce = bool(coalesce_writes)
        if wire >= WIRE_V2:
            await client.negotiate(wire)
        return client

    @property
    def outstanding(self) -> int:
        """Requests sent and not yet answered on this connection."""
        return len(self._pending)

    @property
    def wire(self) -> int:
        """The negotiated protocol version (1 until a successful hello)."""
        return self._wire

    async def negotiate(self, version: int = WIRE_V2) -> int:
        """Request a protocol upgrade; returns the agreed version.

        An old server answers ``hello`` with an ``error`` frame — the client
        stays on v1 and every operation keeps working.
        """
        future = self._submit_json({"op": "hello", "wire": int(version)})
        try:
            frame = await self._expect(future, "hello_ok")
        except ServingError:
            if self._failure is not None:
                raise self._failure
            return self._wire
        self._wire = int(frame.get("wire", WIRE_V1))
        return self._wire

    # -- correlation ----------------------------------------------------- #

    async def _read_loop(self) -> None:
        decoder = FrameDecoder()
        try:
            while True:
                try:
                    chunk = await self._reader.read(READ_CHUNK_BYTES)
                except OSError:
                    chunk = b""
                if not chunk:
                    self._fail_all(ServingError("server closed the connection"))
                    return
                for frame in decoder.feed(chunk):
                    self._deliver(frame)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 — any reader failure kills the link
            self._fail_all(ServingError("connection failed: %s" % exc))

    def _deliver(self, frame: dict) -> None:
        if not isinstance(frame, dict):
            return
        op = frame.get("op")
        if op in ("quote_result_batch", "feedback_ok_batch"):
            for item in frame.get("items") or []:
                self._deliver(item)
            return
        tag = frame.get("id")
        future = self._pending.pop(tag, None) if tag is not None else None
        if future is None or future.done():
            if op == "error" and tag is None:
                # A frame-boundary protocol error: the server hangs up after
                # sending it, so nothing pending can ever be answered.
                self._fail_all(error_from_frame(frame))
            # Anything else without a live future (e.g. a response to a
            # caller that gave up) is dropped — ids are never reused, so it
            # cannot be mistaken for another request's answer.
            return
        if op == "error":
            future.set_exception(error_from_frame(frame))
        else:
            future.set_result(frame)

    def _fail_all(self, exc: ServingError) -> None:
        # Remember the terminal failure: a request submitted *after* the
        # connection died has no reader left to resolve its future, so
        # _register must refuse it instead of letting the caller hang.
        if self._failure is None:
            self._failure = exc
        self._staged.clear()
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    # -- writes ----------------------------------------------------------- #

    def _register(self, payload: dict) -> "asyncio.Future":
        """Tag a payload and create the future its response resolves."""
        if self._closed:
            raise ServingError("client is closed")
        if self._failure is not None:
            raise ServingError("connection is dead: %s" % self._failure)
        self._next_tag += 1
        payload["id"] = self._next_tag
        future = asyncio.get_running_loop().create_future()
        self._pending[self._next_tag] = future
        return future

    def _write_now(self, kind: str, payloads: Sequence[dict]) -> None:
        """Encode one same-kind run as a single buffer and write it."""
        if self._wire >= WIRE_V2 and kind == "quote":
            self._writer.write(encode_quote_batch(payloads))
        elif self._wire >= WIRE_V2 and kind == "feedback":
            self._writer.write(encode_feedback_batch(payloads))
        else:
            self._writer.write(encode_frames(payloads))

    def _enqueue(self, kind: str, payload: dict) -> None:
        if self._coalesce:
            self._staged.append((kind, payload))
            if not self._flush_scheduled:
                self._flush_scheduled = True
                asyncio.get_running_loop().call_soon(self._flush_staged)
            return
        self._write_now(kind, [payload])

    def _flush_staged(self) -> None:
        """End-of-tick flush: consecutive same-kind runs leave as one write."""
        self._flush_scheduled = False
        staged, self._staged = self._staged, []
        if not staged or self._closed or self._failure is not None:
            return
        try:
            index = 0
            while index < len(staged):
                kind = staged[index][0]
                end = index + 1
                while end < len(staged) and staged[end][0] == kind:
                    end += 1
                self._write_now(
                    kind, [payload for _kind, payload in staged[index:end]]
                )
                index = end
        except Exception as exc:  # noqa: BLE001 — a dead writer fails the link
            self._fail_all(ServingError("write failed: %s" % exc))

    # -- pipelining primitives ------------------------------------------- #

    def _quote_payload(
        self, key: SessionKey, features, reserve: Optional[float]
    ) -> dict:
        return {
            "op": "quote",
            "app": key.app,
            "segment": key.segment,
            "features": [float(value) for value in np.asarray(features, dtype=float)],
            "reserve": None if reserve is None else float(reserve),
        }

    def _feedback_payload(self, key: SessionKey, quote_id: int, accepted: bool) -> dict:
        return {
            "op": "feedback",
            "app": key.app,
            "segment": key.segment,
            "quote_id": int(quote_id),
            "accepted": bool(accepted),
        }

    def submit_quote(
        self,
        key: SessionKey,
        features,
        reserve: Optional[float] = None,
    ) -> "asyncio.Future":
        """Fire one quote; the future resolves to its ``quote_result`` dict.

        Returns immediately — pipelining is simply calling this again before
        awaiting.  The future raises :class:`BackpressureError` on a
        frontend rejection and :class:`ServingError` on a drain failure.
        With ``coalesce_writes`` the frame leaves at the end of the current
        event-loop tick, batched with its same-kind neighbours.
        """
        payload = self._quote_payload(key, features, reserve)
        future = self._register(payload)
        self._enqueue("quote", payload)
        return future

    def submit_feedback(
        self, key: SessionKey, quote_id: int, accepted: bool
    ) -> "asyncio.Future":
        """Fire one feedback event; the future resolves on ``feedback_ok``."""
        payload = self._feedback_payload(key, quote_id, accepted)
        future = self._register(payload)
        self._enqueue("feedback", payload)
        return future

    def submit_quotes(
        self, items: Iterable[Tuple[SessionKey, "np.ndarray", Optional[float]]]
    ) -> List["asyncio.Future"]:
        """Fire a batch of quotes as **one** frame (v2) or one buffer (v1).

        ``items`` yields ``(key, features, reserve)`` triples; returns one
        future per item, in order.  Bypasses the coalescing stage — the
        batch is written immediately as a single unit.
        """
        payloads = []
        futures = []
        for key, features, reserve in items:
            payload = self._quote_payload(key, features, reserve)
            futures.append(self._register(payload))
            payloads.append(payload)
        if payloads:
            self._write_now("quote", payloads)
        return futures

    def submit_feedbacks(
        self, events: Iterable[Tuple[SessionKey, int, bool]]
    ) -> List["asyncio.Future"]:
        """Fire a batch of feedback events as one frame (v2) or buffer (v1).

        ``events`` yields ``(key, quote_id, accepted)`` triples.
        """
        payloads = []
        futures = []
        for key, quote_id, accepted in events:
            payload = self._feedback_payload(key, quote_id, accepted)
            futures.append(self._register(payload))
            payloads.append(payload)
        if payloads:
            self._write_now("feedback", payloads)
        return futures

    @staticmethod
    async def _expect(future: "asyncio.Future", op: str) -> dict:
        frame = await future
        if frame.get("op") != op:
            raise ServingError("expected %r frame, got %r" % (op, frame.get("op")))
        return frame

    # -- awaited operations ---------------------------------------------- #

    def _submit_json(self, payload: dict) -> "asyncio.Future":
        """Housekeeping ops: always a single JSON frame, never staged."""
        future = self._register(payload)
        self._writer.write(encode_frame(payload))
        return future

    async def quote(
        self, key: SessionKey, features, reserve: Optional[float] = None
    ) -> dict:
        """Request one quote and await its result frame."""
        return await self._expect(
            self.submit_quote(key, features, reserve=reserve), "quote_result"
        )

    async def feedback(self, key: SessionKey, quote_id: int, accepted: bool) -> None:
        await self._expect(self.submit_feedback(key, quote_id, accepted), "feedback_ok")

    async def flush(self) -> int:
        frame = await self._expect(self._submit_json({"op": "flush"}), "flush_ok")
        return int(frame["drained"])

    async def stats(self) -> dict:
        return await self._expect(self._submit_json({"op": "stats"}), "stats")

    async def ping(self) -> None:
        await self._expect(self._submit_json({"op": "ping"}), "pong")

    async def drain(self) -> None:
        """Flow-control the outgoing buffer (submit-heavy open loops)."""
        await self._writer.drain()

    # -- lifecycle -------------------------------------------------------- #

    async def close(self) -> None:
        """Tear down the reader task and the socket; fail anything pending."""
        if self._closed:
            return
        self._closed = True
        self._staged.clear()
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):  # noqa: BLE001
            pass
        self._fail_all(ServingError("client closed with requests outstanding"))
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def __aenter__(self) -> "AsyncQuoteClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


async def serve_closed_loop_async(
    client: AsyncQuoteClient,
    key: SessionKey,
    materialized: MaterializedArrivals,
    pricer_name: Optional[str] = None,
) -> SimulationResult:
    """Drive one session through a materialised market over the async client.

    The asyncio twin of :func:`repro.serving.frontend.
    serve_closed_loop_socket`: one quote per round, the sale settled against
    the realised market value with the engine's scalar comparison, feedback
    awaited before the next round.  Because the per-round protocol — and the
    float round-trip on both wire versions — is identical, the resulting
    transcript is bit-identical to the offline engine.
    """
    transcript = Transcript.for_materialized(materialized)
    for round_ in stream_rounds(materialized):
        result = await client.quote(key, round_.features, reserve=round_.reserve)
        sold = settle_frame_into_transcript(
            transcript, round_.index, result, round_.market_value
        )
        await client.feedback(key, result["quote_id"], sold)
    transcript.finalize_regrets()
    return SimulationResult(
        pricer_name=pricer_name if pricer_name is not None else str(key),
        transcript=transcript,
    )
