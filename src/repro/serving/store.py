"""Columnar session store: struct-of-arrays slabs + mmap snapshot segments.

:class:`SessionStore` is the state backend behind
:class:`repro.serving.registry.PricerRegistry`.  It replaces the
object-per-session ``OrderedDict`` bookkeeping with three columnar pieces:

* **per-family state slabs** — every resident session's mutable pricer state
  is captured into a row of a struct-of-arrays slab.  The slab schema is the
  checkpoint subsystem's per-family array manifest
  (:func:`repro.engine.checkpoint.flatten_state`): one *family* is a
  ``(pricer_type, ((dtype, shape), ...))`` signature, one column per array
  leaf, rows recycled through a free-list.  Same-family sessions therefore
  live contiguously, which is what makes cross-session batched math natural
  (:meth:`SessionStore.materialize_rows` / :meth:`~SessionStore.scatter_rows`
  hand the engine contiguous ``(k, ...)`` row slices and scatter results
  back);
* **clock-hand eviction** — capacity enforcement sweeps a second-chance clock
  over the resident-row ring instead of scanning an LRU list: every access
  sets a row's reference bit, the hand clears bits as it advances, and the
  first unreferenced, unpinned, settled row is the victim.  Each eviction is
  O(1) amortised (every hand step either consumes a reference bit set by an
  access or inspects a row at most twice per sweep), where the old
  ``OrderedDict`` scan was O(resident) per eviction whenever cold exempt
  sessions piled up at the LRU end;
* **mmap snapshot segments** — with ``snapshot_format="segment"``, persisted
  sessions append their raw state bytes to shared segment files
  (``segments/*.seg``, many sessions per file) with a JSONL index sidecar
  mapping session slug → segment/offset/layout.  Hydration then memory-maps
  the segment and slices the state arrays straight out of the page cache —
  no per-session file open, no zlib decompress, no ``.npz`` parse — which is
  what keeps cold-session storms off the filesystem's back.  The index is an
  append-only journal (last entry per slug wins, tombstones mark exports, a
  torn tail line is ignored), so a crash mid-append never corrupts earlier
  records.

The legacy file-per-session ``.session.npz`` format stays fully readable —
and is still the default — because the offline resharder and the live
rebalancer's export path move sessions as individual checkpoint files.  A
segment-format store hydrates from legacy files it finds (migration), and
:meth:`SessionStore.export_session` always materialises a legacy file (and
tombstones the segment record) so re-homing stays byte-exact either way.

Both formats round-trip ``state_dict`` bit-identically: arrays are stored as
raw little-endian bytes (segments) or lossless npz entries (legacy), and the
JSON skeleton uses Python's shortest-round-trip float repr.
"""

from __future__ import annotations

import json
import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine import checkpoint as checkpoint_store
from repro.exceptions import ServingError
from repro.serving.requests import SessionKey

__all__ = [
    "SESSION_SUFFIX",
    "SEGMENT_DIR",
    "SEGMENT_SUFFIX",
    "SEGMENT_INDEX",
    "SNAPSHOT_FORMATS",
    "DEFAULT_SEGMENT_BYTES",
    "PricingSession",
    "RegistryStats",
    "SegmentRecord",
    "SegmentLog",
    "MaterializedRows",
    "SessionStore",
    "list_segment_sessions",
    "read_segment_record",
    "export_segments_to_legacy",
]

#: A factory builds (model, fresh same-config pricer) for one session key.
SessionFactory = Callable[[SessionKey], Tuple[Any, Any]]

#: Suffix of legacy per-session snapshot files.
SESSION_SUFFIX = ".session.npz"

#: Subdirectory of a snapshot dir holding segment files and their index.
SEGMENT_DIR = "segments"

#: Suffix of segment data files.
SEGMENT_SUFFIX = ".seg"

#: File name of the JSONL index journal inside :data:`SEGMENT_DIR`.
SEGMENT_INDEX = "index.jsonl"

#: Supported on-disk snapshot formats.
SNAPSHOT_FORMATS = ("legacy", "segment")

#: Rotate to a fresh segment file once the active one exceeds this.
DEFAULT_SEGMENT_BYTES = 8 * 1024 * 1024

#: Record/array alignment inside segment files (cache-line / SIMD friendly,
#: and keeps every float64 column slice naturally aligned for mmap views).
_ALIGN = 64


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


@dataclass
class PricingSession:
    """One resident pricing session."""

    key: SessionKey
    model: Any
    pricer: Any
    #: Decisions awaiting accept/reject feedback, keyed by quote id.
    pending: Dict[int, Any] = field(default_factory=dict)
    quotes_served: int = 0
    feedback_seen: int = 0
    updates_since_persist: int = 0
    hydrated: bool = False
    #: Pinned sessions are exempt from eviction (and refuse explicit
    #: eviction) — the online rebalancer pins a freshly-attached session
    #: until its parked quotes have been replayed onto it.
    pinned: bool = False

    @property
    def rounds_seen(self) -> int:
        """Rounds the session's pricer has priced (propose calls)."""
        return self.pricer.rounds_seen


@dataclass
class RegistryStats:
    """Lifecycle counters of one registry (reported by the serving bench).

    ``created`` counts sessions built *from scratch* and ``hydrations``
    sessions rebuilt from a snapshot — the two are disjoint (a hydrated
    session is not double-counted as a creation), so
    ``created + hydrations`` (:attr:`opened`) is the number of times a
    session entered residency for the first time since its last eviction.

    The store-level fields split hydrations by source
    (``zero_copy_hydrations`` from mmap segments vs ``legacy_hydrations``
    from per-session ``.npz`` files), count clock-hand work
    (``clock_hand_steps`` / ``clock_rotations``), and gauge the columnar
    footprint (``resident_bytes`` of occupied slab rows, ``segments`` /
    ``segment_bytes`` on disk).  Every value is a plain summable number so
    :meth:`ShardedRegistry.stats` can aggregate shards by key.
    """

    created: int = 0
    hydrations: int = 0
    evictions: int = 0
    persists: int = 0
    #: Sessions handed off to another shard (persist + drop, no eviction):
    #: the online rebalancer's exit path.  Disjoint from ``evictions``.
    exports: int = 0
    #: Hydrations served as an mmap slice out of a snapshot segment.
    zero_copy_hydrations: int = 0
    #: Hydrations that parsed a legacy ``.session.npz`` file.
    legacy_hydrations: int = 0
    #: Individual clock-hand advances during victim selection.
    clock_hand_steps: int = 0
    #: Full wraps of the clock hand around the resident-row ring.
    clock_rotations: int = 0
    #: Bytes held by occupied state-slab rows (gauge, not a counter).
    resident_bytes: int = 0
    #: Segment files on disk (gauge).
    segments: int = 0
    #: Total bytes across segment files (gauge).
    segment_bytes: int = 0

    @property
    def opened(self) -> int:
        """Sessions that entered residency (fresh creations + hydrations)."""
        return self.created + self.hydrations

    def as_dict(self) -> dict:
        return {
            "created": self.created,
            "hydrations": self.hydrations,
            "opened": self.opened,
            "evictions": self.evictions,
            "persists": self.persists,
            "exports": self.exports,
            "zero_copy_hydrations": self.zero_copy_hydrations,
            "legacy_hydrations": self.legacy_hydrations,
            "clock_hand_steps": self.clock_hand_steps,
            "clock_rotations": self.clock_rotations,
            "resident_bytes": self.resident_bytes,
            "segments": self.segments,
            "segment_bytes": self.segment_bytes,
        }


# --------------------------------------------------------------------------- #
# Per-family struct-of-arrays slabs
# --------------------------------------------------------------------------- #

#: One family = pricer type + the (dtype, shape) sequence of its array leaves
#: in :func:`repro.engine.checkpoint.flatten_state` traversal order.
FamilyKey = Tuple[str, Tuple[Tuple[str, Tuple[int, ...]], ...]]


def _family_key(pricer_type: str, arrays: Sequence[np.ndarray]) -> FamilyKey:
    leaves = tuple(
        (np.asarray(array).dtype.str, tuple(np.asarray(array).shape))
        for array in arrays
    )
    return (pricer_type, leaves)


class FamilySlab:
    """Struct-of-arrays storage for one family's captured session state.

    One column per array leaf, shaped ``(capacity, *leaf_shape)``; a row is
    one session's full array state plus the JSON skeleton text holding its
    non-array scalars (round index, counters, RNG position).  Rows are
    recycled through a free-list and capacity grows geometrically.
    """

    def __init__(self, family: FamilyKey, initial_capacity: int = 8) -> None:
        self.family = family
        self.capacity = max(1, int(initial_capacity))
        self.columns: List[np.ndarray] = [
            np.zeros((self.capacity,) + shape, dtype=np.dtype(dtype))
            for dtype, shape in family[1]
        ]
        self.skeletons: List[Optional[str]] = [None] * self.capacity
        self._free: List[int] = list(range(self.capacity - 1, -1, -1))
        self.used = 0

    @property
    def row_nbytes(self) -> int:
        """Array bytes held by one row (skeleton text excluded)."""
        return int(
            sum(
                np.dtype(dtype).itemsize * int(np.prod(shape, dtype=np.int64))
                for dtype, shape in self.family[1]
            )
        )

    def _grow(self) -> None:
        new_capacity = self.capacity * 2
        for index, column in enumerate(self.columns):
            grown = np.zeros((new_capacity,) + column.shape[1:], dtype=column.dtype)
            grown[: self.capacity] = column
            self.columns[index] = grown
        self.skeletons.extend([None] * (new_capacity - self.capacity))
        self._free.extend(range(new_capacity - 1, self.capacity - 1, -1))
        self.capacity = new_capacity

    def acquire(self) -> int:
        if not self._free:
            self._grow()
        row = self._free.pop()
        self.used += 1
        return row

    def release(self, row: int) -> None:
        self.skeletons[row] = None
        self._free.append(row)
        self.used -= 1

    def put(self, row: int, arrays: Sequence[np.ndarray], skeleton_json: str) -> None:
        for column, array in zip(self.columns, arrays):
            column[row, ...] = array
        self.skeletons[row] = skeleton_json

    def row_arrays(self, row: int) -> List[np.ndarray]:
        """Views of one row's array leaves (no copy; aliases the slab)."""
        return [column[row, ...] for column in self.columns]


# --------------------------------------------------------------------------- #
# Snapshot segments: shared data files + JSONL index journal
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class SegmentRecord:
    """One persisted session inside a segment file (one index-journal line)."""

    slug: str
    app: str
    segment: str
    file_id: int
    offset: int
    length: int
    pricer_type: str
    rounds_done: int
    #: Encoded state skeleton (array leaves replaced by index placeholders).
    skeleton: Any
    #: Per-leaf ``(dtype_str, shape, offset_within_record)``.
    arrays: Tuple[Tuple[str, Tuple[int, ...], int], ...]
    meta: dict

    def key(self) -> SessionKey:
        return SessionKey(self.app, self.segment)

    def to_json_line(self) -> str:
        return json.dumps(
            {
                "slug": self.slug,
                "app": self.app,
                "segment": self.segment,
                "file": self.file_id,
                "offset": self.offset,
                "length": self.length,
                "pricer_type": self.pricer_type,
                "rounds_done": self.rounds_done,
                "skeleton": self.skeleton,
                "arrays": [
                    [dtype, list(shape), off] for dtype, shape, off in self.arrays
                ],
                "meta": self.meta,
            },
            separators=(",", ":"),
        )

    @staticmethod
    def from_json(obj: dict) -> "SegmentRecord":
        return SegmentRecord(
            slug=str(obj["slug"]),
            app=str(obj["app"]),
            segment=str(obj["segment"]),
            file_id=int(obj["file"]),
            offset=int(obj["offset"]),
            length=int(obj["length"]),
            pricer_type=str(obj["pricer_type"]),
            rounds_done=int(obj["rounds_done"]),
            skeleton=obj["skeleton"],
            arrays=tuple(
                (str(dtype), tuple(int(n) for n in shape), int(off))
                for dtype, shape, off in obj["arrays"]
            ),
            meta=dict(obj.get("meta") or {}),
        )


def _parse_index(index_path: str) -> Dict[str, SegmentRecord]:
    """Replay an index journal: last entry per slug wins, tombstones delete.

    A torn tail line (crash mid-append) is ignored; any other malformed line
    is an error — the journal is append-only, so corruption in the middle
    means the file was damaged, not half-written.
    """
    records: Dict[str, SegmentRecord] = {}
    if not os.path.exists(index_path):
        return records
    with open(index_path, "r", encoding="utf-8") as handle:
        lines = handle.read().split("\n")
    for number, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except ValueError as exc:
            if number == len(lines) - 1 or not any(
                later.strip() for later in lines[number + 1 :]
            ):
                break  # torn tail from a crash mid-append
            raise ServingError(
                "corrupt segment index %s at line %d: %s"
                % (index_path, number + 1, exc)
            ) from exc
        if obj.get("tombstone"):
            records.pop(str(obj["slug"]), None)
        else:
            record = SegmentRecord.from_json(obj)
            records[record.slug] = record
    return records


class SegmentLog:
    """Append-only segment writer + mmap reader for one snapshot directory.

    Data-before-index ordering makes the journal crash-consistent: record
    bytes are written and flushed to the segment file *before* the index
    line referencing them is appended, so every replayable index entry
    points at fully written data and a crash between the two just orphans a
    few bytes at the segment tail.
    """

    def __init__(
        self, snapshot_dir: str, max_segment_bytes: int = DEFAULT_SEGMENT_BYTES
    ) -> None:
        if max_segment_bytes < _ALIGN:
            raise ValueError(
                "max_segment_bytes must be at least %d, got %d"
                % (_ALIGN, max_segment_bytes)
            )
        self.directory = os.path.join(snapshot_dir, SEGMENT_DIR)
        os.makedirs(self.directory, exist_ok=True)
        self._max_bytes = int(max_segment_bytes)
        self._index_path = os.path.join(self.directory, SEGMENT_INDEX)
        self._records = _parse_index(self._index_path)
        self._maps: Dict[int, np.memmap] = {}
        existing = self._segment_ids()
        self._active_id = existing[-1] if existing else 0
        self._active_size = (
            os.path.getsize(self._segment_path(self._active_id)) if existing else 0
        )
        self._handle = None
        self._index_handle = None

    # -- paths / enumeration ------------------------------------------- #

    def _segment_path(self, file_id: int) -> str:
        return os.path.join(self.directory, "seg-%06d%s" % (file_id, SEGMENT_SUFFIX))

    def _segment_ids(self) -> List[int]:
        ids = []
        for name in os.listdir(self.directory):
            if name.startswith("seg-") and name.endswith(SEGMENT_SUFFIX):
                try:
                    ids.append(int(name[4 : -len(SEGMENT_SUFFIX)]))
                except ValueError:
                    continue
        return sorted(ids)

    @property
    def segment_count(self) -> int:
        return len(self._segment_ids())

    @property
    def total_bytes(self) -> int:
        return int(
            sum(os.path.getsize(self._segment_path(i)) for i in self._segment_ids())
        )

    # -- index --------------------------------------------------------- #

    def lookup(self, slug: str) -> Optional[SegmentRecord]:
        return self._records.get(slug)

    def records(self) -> Dict[str, SegmentRecord]:
        return dict(self._records)

    def _append_index_line(self, line: str) -> None:
        if self._index_handle is None:
            self._index_handle = open(self._index_path, "a", encoding="utf-8")
        self._index_handle.write(line + "\n")
        self._index_handle.flush()

    def tombstone(self, slug: str) -> bool:
        """Mark ``slug`` deleted; returns whether a live record existed."""
        if slug not in self._records:
            return False
        del self._records[slug]
        self._append_index_line(
            json.dumps({"slug": slug, "tombstone": True}, separators=(",", ":"))
        )
        return True

    # -- write path ---------------------------------------------------- #

    def append(
        self,
        key: SessionKey,
        pricer_type: str,
        rounds_done: int,
        skeleton: Any,
        arrays: Sequence[np.ndarray],
        meta: Optional[dict] = None,
    ) -> SegmentRecord:
        """Append one session's state; returns (and indexes) its record."""
        layout: List[Tuple[str, Tuple[int, ...], int]] = []
        cursor = 0
        chunks: List[bytes] = []
        for array in arrays:
            array = np.ascontiguousarray(array)
            aligned = _align(cursor)
            if aligned > cursor:
                chunks.append(b"\0" * (aligned - cursor))
                cursor = aligned
            data = array.tobytes()
            layout.append((array.dtype.str, tuple(array.shape), cursor))
            chunks.append(data)
            cursor += len(data)
        payload = b"".join(chunks)
        if self._active_size and self._active_size + len(payload) > self._max_bytes:
            self._roll()
        if self._handle is None:
            self._handle = open(self._segment_path(self._active_id), "ab")
            self._active_size = self._handle.tell()
        start = _align(self._active_size)
        if start > self._active_size:
            self._handle.write(b"\0" * (start - self._active_size))
        self._handle.write(payload)
        self._handle.flush()
        self._active_size = start + len(payload)
        record = SegmentRecord(
            slug=key.slug(),
            app=key.app,
            segment=key.segment,
            file_id=self._active_id,
            offset=start,
            length=len(payload),
            pricer_type=pricer_type,
            rounds_done=int(rounds_done),
            skeleton=skeleton,
            arrays=tuple(layout),
            meta=dict(meta or {}),
        )
        self._append_index_line(record.to_json_line())
        self._records[record.slug] = record
        return record

    def _roll(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._maps.pop(self._active_id, None)
        self._active_id += 1
        self._active_size = 0

    # -- read path ----------------------------------------------------- #

    def _mapped(self, file_id: int, needed_end: int) -> np.memmap:
        mapped = self._maps.get(file_id)
        if mapped is None or mapped.shape[0] < needed_end:
            # The active segment grows under us: re-map at the current size.
            # A flushed write is visible to a fresh mmap of the same file.
            self._maps[file_id] = np.memmap(
                self._segment_path(file_id), dtype=np.uint8, mode="r"
            )
            mapped = self._maps[file_id]
        if mapped.shape[0] < needed_end:
            raise ServingError(
                "segment %d is shorter (%d bytes) than its index claims (%d)"
                % (file_id, mapped.shape[0], needed_end)
            )
        return mapped

    def read_arrays(self, record: SegmentRecord) -> List[np.ndarray]:
        """The record's array leaves as read-only views into the mmap."""
        views: List[np.ndarray] = []
        mapped = None
        for dtype_str, shape, rel in record.arrays:
            dtype = np.dtype(dtype_str)
            count = int(np.prod(shape, dtype=np.int64))
            if count == 0:
                # A zero-element leaf occupies no segment bytes (and a
                # record of only such leaves may sit in an empty file that
                # cannot be mapped at all).
                views.append(np.empty(shape, dtype=dtype))
                continue
            if mapped is None:
                mapped = self._mapped(record.file_id, record.offset + record.length)
            view = np.frombuffer(
                mapped, dtype=dtype, count=count, offset=record.offset + rel
            ).reshape(shape)
            views.append(view)
        return views

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        if self._index_handle is not None:
            self._index_handle.close()
            self._index_handle = None
        self._maps.clear()


def list_segment_sessions(snapshot_dir: str) -> Dict[SessionKey, SegmentRecord]:
    """Live (non-tombstoned) segment-resident sessions of a snapshot dir.

    Reads the index journal without instantiating a store — the rebalancer
    and the shard-retirement check use this from the router process to see
    sessions that exist only inside another process's segment files.
    """
    index_path = os.path.join(snapshot_dir, SEGMENT_DIR, SEGMENT_INDEX)
    records = _parse_index(index_path)
    return {record.key(): record for record in records.values()}


def read_segment_record(
    snapshot_dir: str, record: SegmentRecord
) -> checkpoint_store.PricerCheckpoint:
    """Materialise one segment record as an in-memory checkpoint (copies)."""
    path = os.path.join(
        snapshot_dir, SEGMENT_DIR, "seg-%06d%s" % (record.file_id, SEGMENT_SUFFIX)
    )
    with open(path, "rb") as handle:
        handle.seek(record.offset)
        payload = handle.read(record.length)
    if len(payload) < record.length:
        raise ServingError(
            "segment record for %s is truncated (%d of %d bytes)"
            % (record.slug, len(payload), record.length)
        )
    arrays = []
    for dtype_str, shape, rel in record.arrays:
        dtype = np.dtype(dtype_str)
        count = int(np.prod(shape, dtype=np.int64))
        arrays.append(
            np.frombuffer(payload, dtype=dtype, count=count, offset=rel)
            .reshape(shape)
            .copy()
        )
    return checkpoint_store.PricerCheckpoint(
        pricer_type=record.pricer_type,
        rounds_done=record.rounds_done,
        state=checkpoint_store.unflatten_state(record.skeleton, arrays),
        meta=dict(record.meta),
    )


def export_segments_to_legacy(snapshot_dir: str) -> int:
    """Rewrite every live segment record as a legacy ``.session.npz`` file.

    The bridge from segment-format snapshot dirs to tools that only speak
    the file-per-session layout (the offline resharder): each record becomes
    an ordinary checkpoint file next to the ``segments/`` directory and is
    tombstoned from the index.  Returns the number of files written.
    """
    sessions = list_segment_sessions(snapshot_dir)
    if not sessions:
        return 0
    log = SegmentLog(snapshot_dir)
    written = 0
    try:
        for key, record in sorted(sessions.items(), key=lambda item: item[1].slug):
            checkpoint = read_segment_record(snapshot_dir, record)
            checkpoint_store.save_state_checkpoint(
                os.path.join(snapshot_dir, "%s%s" % (key.slug(), SESSION_SUFFIX)),
                checkpoint.pricer_type,
                checkpoint.rounds_done,
                checkpoint.state,
                meta=checkpoint.meta,
            )
            log.tombstone(record.slug)
            written += 1
    finally:
        log.close()
    return written


# --------------------------------------------------------------------------- #
# Materialized row slices
# --------------------------------------------------------------------------- #


@dataclass
class MaterializedRows:
    """Contiguous struct-of-arrays slices of same-family sessions.

    ``arrays[i]`` stacks the ``i``-th state leaf of every requested session
    into one C-contiguous ``(len(keys), *leaf_shape)`` array — the shape a
    batched engine backend consumes directly.  ``skeletons`` carries each
    session's non-array scalars so :meth:`SessionStore.scatter_rows` can
    rebuild full state dicts when writing results back.
    """

    family: FamilyKey
    keys: List[SessionKey]
    arrays: List[np.ndarray]
    skeletons: List[str]

    @property
    def pricer_type(self) -> str:
        return self.family[0]

    def __len__(self) -> int:
        return len(self.keys)


# --------------------------------------------------------------------------- #
# The store
# --------------------------------------------------------------------------- #


@dataclass
class _ResidentRow:
    """One occupied slot of the resident ring."""

    key: SessionKey
    session: PricingSession
    family: Optional[FamilyKey] = None
    slab_row: int = -1
    #: Second-chance bit: set on access, cleared by the passing clock hand.
    referenced: bool = False
    #: The live pricer's *array* state diverged from the slab copy (a scalar
    #: update ran outside the row data path).  Set via :meth:`mark_stale`,
    #: cleared by every capture; lets ``materialize_rows(refresh="stale")``
    #: skip the state round-trip for rows that are already in sync.
    stale: bool = False


class SessionStore:
    """Columnar session residency + snapshot backend.

    Owns everything :class:`repro.serving.registry.PricerRegistry` used to
    do internally — hydration, write-behind persistence, capacity
    enforcement — plus the columnar slabs and segment snapshots described in
    the module docstring.  The registry remains the public facade; this
    class is its engine and the home of the row-level APIs
    (:meth:`materialize_rows` / :meth:`scatter_rows`).

    Parameters
    ----------
    factory:
        Builds ``(model, pricer)`` for a key; hydration loads only mutable
        state into the fresh pricer (the checkpoint contract).
    snapshot_dir:
        Snapshot directory; ``None`` disables persistence entirely.
    max_sessions:
        Resident capacity; ``None`` means unbounded.
    persist_every:
        Write-behind cadence in feedback updates; ``0`` persists only on
        eviction / flush.
    snapshot_format:
        ``"legacy"`` writes file-per-session ``.session.npz`` (the default,
        and what the offline resharder consumes); ``"segment"`` appends to
        shared mmap segment files.  Both formats are always *readable* —
        hydration prefers a live segment record, then falls back to a
        legacy file (the migration path).
    segment_max_bytes:
        Rotation threshold for segment files.
    """

    def __init__(
        self,
        factory: SessionFactory,
        snapshot_dir: Optional[str] = None,
        max_sessions: Optional[int] = None,
        persist_every: int = 0,
        snapshot_format: str = "legacy",
        segment_max_bytes: int = DEFAULT_SEGMENT_BYTES,
    ) -> None:
        if max_sessions is not None and max_sessions < 1:
            raise ValueError("max_sessions must be at least 1, got %d" % max_sessions)
        if persist_every < 0:
            raise ValueError("persist_every must be non-negative, got %d" % persist_every)
        if snapshot_format not in SNAPSHOT_FORMATS:
            raise ValueError(
                "snapshot_format must be one of %r, got %r"
                % (SNAPSHOT_FORMATS, snapshot_format)
            )
        self._factory = factory
        self._snapshot_dir = snapshot_dir
        self._max_sessions = max_sessions
        self._persist_every = persist_every
        self.snapshot_format = snapshot_format
        self._segment_max_bytes = int(segment_max_bytes)
        self._slabs: Dict[FamilyKey, FamilySlab] = {}
        #: key → ring slot, insertion-ordered and moved-to-end on access so
        #: ``resident_keys`` still reports LRU → MRU (the clock hand decides
        #: *victims*; this map only preserves the observable recency order).
        self._index: "OrderedDict[SessionKey, int]" = OrderedDict()
        self._ring: List[Optional[_ResidentRow]] = []
        self._ring_free: List[int] = []
        self._hand = 0
        self._segments: Optional[SegmentLog] = None
        if snapshot_dir is not None and snapshot_format == "segment":
            self._segments = SegmentLog(snapshot_dir, segment_max_bytes)
        self.stats = RegistryStats()
        #: Wall-clock seconds of each hydration (bench introspection: the
        #: Zipf sweep reads storm percentiles from here).
        self.hydration_seconds: List[float] = []
        self._refresh_gauges()

    # ------------------------------------------------------------------ #
    # Lookup / residency
    # ------------------------------------------------------------------ #

    def session(self, key: SessionKey) -> PricingSession:
        """The resident session for ``key``, creating or hydrating it.

        Every access marks the session referenced (its second-chance bit)
        and most-recently-used; creating a new session may clock-evict a
        cold one past ``max_sessions``.
        """
        slot = self._index.get(key)
        if slot is not None:
            self._index.move_to_end(key)
            row = self._ring[slot]
            row.referenced = True
            return row.session
        model, pricer = self._factory(key)
        session = PricingSession(key=key, model=model, pricer=pricer)
        state: Optional[dict] = None
        record = (
            self._segments.lookup(key.slug()) if self._segments is not None else None
        )
        if record is not None and record.pricer_type == type(pricer).__name__:
            started = time.perf_counter()
            views = self._segments.read_arrays(record)
            state = checkpoint_store.unflatten_state(record.skeleton, views)
            pricer.load_state(state)
            session.hydrated = True
            self.stats.hydrations += 1
            self.stats.zero_copy_hydrations += 1
            self.hydration_seconds.append(time.perf_counter() - started)
        else:
            path = self.snapshot_path(key)
            if path is not None and os.path.exists(path):
                started = time.perf_counter()
                checkpoint = checkpoint_store.load_checkpoint(path)
                checkpoint_store.restore_pricer(pricer, checkpoint)
                state = checkpoint.state
                session.hydrated = True
                self.stats.hydrations += 1
                self.stats.legacy_hydrations += 1
                self.hydration_seconds.append(time.perf_counter() - started)
            else:
                self.stats.created += 1
        self._admit(session, state)
        self._enforce_capacity(protect=key)
        return session

    def peek(self, key: SessionKey) -> Optional[PricingSession]:
        """The resident session for ``key`` without touching recency."""
        slot = self._index.get(key)
        return self._ring[slot].session if slot is not None else None

    @property
    def resident_count(self) -> int:
        return len(self._index)

    @property
    def resident_keys(self) -> List[SessionKey]:
        """Resident keys in LRU → MRU order."""
        return list(self._index)

    def __contains__(self, key: SessionKey) -> bool:
        return key in self._index

    def pin(self, key: SessionKey) -> None:
        session = self.peek(key)
        if session is None:
            raise ServingError("cannot pin session %s: not resident" % (key,))
        session.pinned = True

    def unpin(self, key: SessionKey) -> None:
        session = self.peek(key)
        if session is not None:
            session.pinned = False

    # ------------------------------------------------------------------ #
    # Slab capture
    # ------------------------------------------------------------------ #

    def _admit(self, session: PricingSession, state: Optional[dict]) -> None:
        if self._ring_free:
            slot = self._ring_free.pop()
        else:
            slot = len(self._ring)
            self._ring.append(None)
        row = _ResidentRow(key=session.key, session=session)
        self._ring[slot] = row
        self._index[session.key] = slot
        if state is None and hasattr(session.pricer, "state_dict"):
            state = session.pricer.state_dict()
        if state is not None:
            # Pricers outside the checkpoint protocol (no state_dict) stay
            # resident without a slab row — they serve, clock-evict and drop,
            # they just cannot persist or materialize (same contract the
            # file-per-session registry had).
            self._capture(row, state)
        self._refresh_gauges()

    def _capture(self, row: _ResidentRow, state: dict) -> Tuple[Any, List[np.ndarray]]:
        """Write ``state`` into the row's slab slot; returns its flattening."""
        skeleton, arrays = checkpoint_store.flatten_state(state)
        family = _family_key(type(row.session.pricer).__name__, arrays)
        if row.family != family:
            # First capture, or the state layout migrated (e.g. a polytope
            # knowledge set gained constraint rows): move to the new slab.
            if row.family is not None:
                self._slabs[row.family].release(row.slab_row)
            slab = self._slabs.get(family)
            if slab is None:
                slab = self._slabs[family] = FamilySlab(family)
            row.family = family
            row.slab_row = slab.acquire()
        self._slabs[row.family].put(
            row.slab_row, arrays, json.dumps(skeleton, separators=(",", ":"))
        )
        row.stale = False
        return skeleton, arrays

    def mark_stale(self, session: PricingSession) -> None:
        """Flag that ``session``'s pricer mutated outside the row data path.

        Scalar feedback updates change the live pricer without touching its
        slab row; marking the row lets ``materialize_rows(refresh="stale")``
        re-capture exactly the diverged sessions instead of all of them.
        No-op for non-resident sessions and pricers without a slab row.
        """
        slot = self._index.get(session.key)
        if slot is not None:
            self._ring[slot].stale = True

    def _drop(self, key: SessionKey) -> None:
        slot = self._index.pop(key)
        row = self._ring[slot]
        if row.family is not None:
            self._slabs[row.family].release(row.slab_row)
        self._ring[slot] = None
        self._ring_free.append(slot)
        self._refresh_gauges()

    def _refresh_gauges(self) -> None:
        self.stats.resident_bytes = int(
            sum(slab.used * slab.row_nbytes for slab in self._slabs.values())
        )
        if self._segments is not None:
            self.stats.segments = self._segments.segment_count
            self.stats.segment_bytes = self._segments.total_bytes

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def snapshot_path(self, key: SessionKey) -> Optional[str]:
        """The *legacy* snapshot file for ``key`` (``None`` = persistence off).

        Segment-format stores still use this path for exports and migration
        reads — it is the interchange location, not the write target.
        """
        if self._snapshot_dir is None:
            return None
        return os.path.join(self._snapshot_dir, "%s%s" % (key.slug(), SESSION_SUFFIX))

    def persist(self, session: PricingSession) -> bool:
        """Snapshot one session to disk; returns whether anything was written.

        Also re-captures the session's live state into its slab row, so the
        columnar view, the snapshot, and the pricer agree at every persist
        boundary.
        """
        if self._snapshot_dir is None:
            return False
        state = session.pricer.state_dict()
        slot = self._index.get(session.key)
        if slot is not None:
            skeleton, arrays = self._capture(self._ring[slot], state)
        else:
            skeleton, arrays = checkpoint_store.flatten_state(state)
        meta = {"app": session.key.app, "segment": session.key.segment}
        if self._segments is not None:
            self._segments.append(
                session.key,
                type(session.pricer).__name__,
                session.rounds_seen,
                skeleton,
                arrays,
                meta=meta,
            )
            # The segment record is now authoritative; a legacy file left
            # over from migration (or a byte-exact re-home) is stale and
            # would only confuse the stranded-snapshot checks.
            path = self.snapshot_path(session.key)
            if path is not None and os.path.exists(path):
                os.unlink(path)
            self._refresh_gauges()
        else:
            checkpoint_store.save_state_checkpoint(
                self.snapshot_path(session.key),
                type(session.pricer).__name__,
                session.rounds_seen,
                state,
                meta=meta,
            )
        session.updates_since_persist = 0
        self.stats.persists += 1
        return True

    def note_feedback(self, session: PricingSession, count: int = 1) -> None:
        """Record ``count`` applied feedback updates (write-behind cadence)."""
        session.feedback_seen += count
        session.updates_since_persist += count
        if 0 < self._persist_every <= session.updates_since_persist:
            self.persist(session)

    def flush(self) -> int:
        """Persist every resident session; returns the number written."""
        written = 0
        for key in list(self._index):
            session = self._ring[self._index[key]].session
            if self.persist(session):
                written += 1
        return written

    def export_session(self, key: SessionKey) -> str:
        """Persist one quiesced session as a legacy file and drop it.

        The shard-handoff exit of the online rebalancer: the state is
        written to the session's *legacy* snapshot file regardless of the
        store's format (the router moves sessions as individual checkpoint
        files), any segment record is tombstoned so the stale copy can
        never shadow the handoff, and residency is released without
        counting an eviction.
        """
        session = self.peek(key)
        if session is None:
            raise ServingError("cannot export session %s: not resident" % (key,))
        if session.pending:
            raise ServingError(
                "cannot export session %s with %d in-flight quote(s); quiesce "
                "it first" % (key, len(session.pending))
            )
        path = self.snapshot_path(key)
        if path is None:
            raise ServingError(
                "cannot export session %s without a snapshot_dir" % (key,)
            )
        checkpoint_store.save_state_checkpoint(
            path,
            type(session.pricer).__name__,
            session.rounds_seen,
            session.pricer.state_dict(),
            meta={"app": key.app, "segment": key.segment},
        )
        self.stats.persists += 1
        if self._segments is not None:
            self._segments.tombstone(key.slug())
        self._drop(key)
        self.stats.exports += 1
        return path

    def materialize_legacy(self, key: SessionKey) -> Optional[str]:
        """Ensure a *cold* session exists as a legacy file; returns its path.

        Resolution order mirrors hydration: a live segment record is
        rewritten as a ``.session.npz`` (and tombstoned); otherwise an
        existing legacy file is returned as-is; ``None`` means the store
        holds nothing for ``key``.  The sharded router's export op uses
        this to re-home sessions that were persisted to segments and then
        evicted.
        """
        path = self.snapshot_path(key)
        if path is None:
            return None
        if key in self._index:
            raise ServingError(
                "session %s is resident; use export_session" % (key,)
            )
        record = (
            self._segments.lookup(key.slug()) if self._segments is not None else None
        )
        if record is not None:
            checkpoint = read_segment_record(self._snapshot_dir, record)
            checkpoint_store.save_state_checkpoint(
                path,
                checkpoint.pricer_type,
                checkpoint.rounds_done,
                checkpoint.state,
                meta=checkpoint.meta,
            )
            self._segments.tombstone(key.slug())
            return path
        if os.path.exists(path):
            return path
        return None

    # ------------------------------------------------------------------ #
    # Eviction
    # ------------------------------------------------------------------ #

    def evict(self, key: SessionKey) -> bool:
        """Persist and drop one session; returns whether it was resident.

        Refuses sessions with in-flight quotes (a decision object cannot be
        rebuilt from a snapshot) and pinned sessions.
        """
        session = self.peek(key)
        if session is None:
            return False
        if session.pending:
            raise ServingError(
                "cannot evict session %s with %d in-flight quote(s); settle "
                "their feedback first" % (key, len(session.pending))
            )
        if session.pinned:
            raise ServingError(
                "cannot evict pinned session %s; unpin it first" % (key,)
            )
        # Persist before dropping: if the snapshot write fails, the session
        # stays resident and the eviction can be retried.
        self.persist(session)
        self._drop(key)
        self.stats.evictions += 1
        return True

    def _enforce_capacity(self, protect: SessionKey) -> None:
        """Clock-evict cold sessions past ``max_sessions``.

        ``protect`` (the just-created session), pinned sessions, and
        sessions with in-flight quotes are never evicted; if the clock
        completes two full rotations without finding a victim every
        candidate is exempt and the store temporarily exceeds capacity
        rather than losing decisions.
        """
        if self._max_sessions is None:
            return
        while len(self._index) > self._max_sessions:
            victim = self._clock_victim(protect)
            if victim is None:
                return
            self.evict(victim)

    def _clock_victim(self, protect: SessionKey) -> Optional[SessionKey]:
        """Advance the clock hand to the next evictable session.

        Invariants: the hand only moves forward (wrapping), a referenced
        row gets exactly one second chance per sweep (its bit is cleared in
        passing, not the hand reset), and exempt rows (pinned, pending
        feedback, the protected key, free slots) are skipped without
        touching their bits.  Two full rotations without a victim means
        every resident row is exempt or re-referenced faster than the hand
        moves — give up rather than spin.
        """
        ring = self._ring
        if not ring:
            return None
        budget = 2 * len(ring) + 1
        while budget > 0:
            budget -= 1
            if self._hand >= len(ring):
                self._hand = 0
                self.stats.clock_rotations += 1
            slot = self._hand
            self._hand += 1
            self.stats.clock_hand_steps += 1
            row = ring[slot]
            if row is None:
                continue
            session = row.session
            if row.key == protect or session.pending or session.pinned:
                continue
            if row.referenced:
                row.referenced = False
                continue
            return row.key
        return None

    # ------------------------------------------------------------------ #
    # Contiguous row slices
    # ------------------------------------------------------------------ #

    def materialize_rows(
        self, keys: Sequence[SessionKey], refresh=True
    ) -> MaterializedRows:
        """Gather same-family sessions into contiguous struct-of-arrays.

        With ``refresh=True`` (the default) each session's live pricer state
        is re-captured into its slab row first, so the returned slices are
        current; ``refresh=False`` returns the state as of the last capture
        (admission or persist).  ``refresh="stale"`` re-captures only the
        rows flagged by :meth:`mark_stale` — the cheap middle ground for
        callers (the quote service's stacked feedback path) that flag every
        out-of-band mutation themselves.  All keys must be resident and
        share one family — mixing families has no contiguous representation.
        """
        rows: List[_ResidentRow] = []
        for key in keys:
            slot = self._index.get(key)
            if slot is None:
                raise ServingError(
                    "cannot materialize session %s: not resident" % (key,)
                )
            rows.append(self._ring[slot])
        if not rows:
            raise ServingError("materialize_rows needs at least one session key")
        if refresh:
            captured = 0
            for row in rows:
                if refresh == "stale" and not row.stale:
                    continue
                self._capture(row, row.session.pricer.state_dict())
                captured += 1
            # A re-capture can migrate a row to a different family slab
            # (state layout changed since the last capture), which moves
            # row-bytes between slabs — keep resident_bytes honest.
            if captured:
                self._refresh_gauges()
        family = rows[0].family
        if family is None:
            raise ServingError(
                "cannot materialize session %s: its pricer does not expose "
                "state_dict" % (rows[0].key,)
            )
        for row in rows[1:]:
            if row.family != family:
                raise ServingError(
                    "cannot materialize sessions across families: %s vs %s"
                    % (family[0], row.family[0] if row.family else None)
                )
        slab = self._slabs[family]
        indices = np.array([row.slab_row for row in rows], dtype=np.intp)
        # Fancy indexing gathers the selected rows into fresh C-contiguous
        # arrays — exactly the (k, *leaf_shape) batch a backend consumes.
        arrays = [column[indices] for column in slab.columns]
        skeletons = [slab.skeletons[row.slab_row] for row in rows]
        return MaterializedRows(
            family=family, keys=list(keys), arrays=arrays, skeletons=skeletons
        )

    def scatter_rows(
        self, materialized: MaterializedRows, update_pricers: bool = True
    ) -> int:
        """Write materialized slices back: slab rows *and* live pricers.

        The inverse of :meth:`materialize_rows` after a batched engine step
        mutated the stacked arrays in place.  Each session's skeleton
        scalars are re-attached unchanged — the batched window must not
        have advanced round counters through the object protocol in
        between.  Returns the number of sessions updated.

        ``update_pricers=False`` writes only the slab rows and skips the
        per-session ``load_state`` rebuild — for callers that already
        propagated the results onto the live pricers directly (the quote
        service's stacked feedback path, which knows exactly which leaves
        the kernel touched).
        """
        slab = self._slabs.get(materialized.family)
        if slab is None:
            raise ServingError(
                "cannot scatter rows: family %s has no slab" % (materialized.family[0],)
            )
        for position, key in enumerate(materialized.keys):
            slot = self._index.get(key)
            if slot is None:
                raise ServingError(
                    "cannot scatter session %s: no longer resident" % (key,)
                )
            row = self._ring[slot]
            if row.family != materialized.family:
                raise ServingError(
                    "cannot scatter session %s: its state layout changed" % (key,)
                )
            arrays = [column[position] for column in materialized.arrays]
            slab.put(row.slab_row, arrays, materialized.skeletons[position])
            if update_pricers:
                state = checkpoint_store.unflatten_state(
                    json.loads(materialized.skeletons[position]), arrays
                )
                row.session.pricer.load_state(state)
        return len(materialized.keys)

    # ------------------------------------------------------------------ #

    def close(self) -> None:
        if self._segments is not None:
            self._segments.close()
