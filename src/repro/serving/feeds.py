"""Traffic feeds for the quote-serving subsystem.

Two feed families drive the service:

* **open-loop synthetic generators** (:class:`SyntheticFeed`) — seeded
  arrival streams that never wait for outcomes, for load generation and
  window/coalescing tests;
* **closed-loop replay feeds** (:class:`ReplayFeed`, built by
  :func:`replay_feed`) — a materialised market streamed one round at a time,
  each round carrying the realised market value so the caller can settle the
  sale and feed the outcome back (the serving analogue of the offline
  engine's same-market protocol).

Replay feeds are built either from an existing
:class:`~repro.engine.arrivals.MaterializedArrivals` (any app environment or
golden market) or straight from the repository's dataset loaders — ``loans``,
``ad_clicks``, ``listings`` — via :func:`dataset_arrival_features`, which
turns dataset records into unit-norm link-space feature rows with the same
deterministic recipes the applications use (log features for the strictly
positive loan attributes, numeric+amenity columns for listings, the FNV-1a
hashing trick for the categorical ad fields).

Every feed is **re-iterable and deterministic**: iterating the same feed
twice yields bit-identical sequences (each iteration re-derives its draws
from the stored seed), which is what lets a replayed serving session be
compared float-for-float against an offline run — and what the dataset
streaming-determinism tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.core.models import LinearModel
from repro.datasets import generate_ad_clicks, generate_listings, generate_loans
from repro.engine.arrivals import ArrivalBatch, MaterializedArrivals, materialize
from repro.engine.streaming import stream_rounds
from repro.exceptions import DatasetError
from repro.learning.hashing import HashingVectorizer
from repro.serving.requests import QuoteRequest, SessionKey

#: Dataset names :func:`dataset_arrival_features` understands.
REPLAY_DATASETS = ("loans", "ad_clicks", "listings")


def _market_theta(rng: np.random.Generator, dimension: int) -> np.ndarray:
    """The golden-market θ* recipe: positive entries, ``‖θ*‖ = sqrt(2 n)``.

    One definition shared by the replay and synthetic feeds, so the two feed
    families price bit-identical markets for the same seed and dimension
    (the same recipe the golden-transcript fixtures use).
    """
    theta = rng.random(dimension) + 0.1
    return theta * (np.sqrt(2.0 * dimension) / np.linalg.norm(theta))


# --------------------------------------------------------------------------- #
# Dataset → link-space feature rows
# --------------------------------------------------------------------------- #


def dataset_arrival_features(
    dataset: str, rounds: int, seed: int, hash_dimension: int = 64
) -> np.ndarray:
    """Unit-norm feature rows for ``rounds`` arrivals of one dataset loader.

    The row recipes are deterministic functions of the loader output (itself
    seeded), so the same ``(dataset, rounds, seed)`` triple always produces
    the identical matrix — replay feeds depend on exactly this.
    """
    if rounds < 1:
        raise DatasetError("rounds must be positive, got %d" % rounds)
    if dataset == "loans":
        records = generate_loans(count=rounds, seed=seed)
        # Strictly positive attributes; log brings the scales together (the
        # log-log pipeline's view of the applicant).
        rows = np.log(records.feature_matrix())
    elif dataset == "listings":
        records = generate_listings(count=rounds, seed=seed)
        rows = np.array(
            [
                list(listing.numeric_values().values()) + list(listing.amenity_values().values())
                for listing in records
            ]
        )
    elif dataset == "ad_clicks":
        records = generate_ad_clicks(count=rounds, seed=seed)
        vectorizer = HashingVectorizer(dimension=hash_dimension)
        rows = vectorizer.transform([impression.tokens() for impression in records])
    else:
        raise DatasetError(
            "unknown replay dataset %r; expected one of %s" % (dataset, (REPLAY_DATASETS,))
        )
    norms = np.linalg.norm(rows, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return rows / norms


def dataset_replay_market(
    dataset: str,
    rounds: int = 512,
    seed: int = 0,
    reserve_fraction: float = 0.6,
    noise_scale: float = 0.01,
    hash_dimension: int = 64,
) -> Tuple[MaterializedArrivals, LinearModel]:
    """A materialised linear market whose arrivals come from a dataset loader.

    The valuation follows the golden-market recipe (positive θ* with
    ``‖θ*‖ = sqrt(2 n)``, reserves at ``reserve_fraction`` of the
    deterministic value, small pre-drawn uniform noise) over the dataset's
    feature rows, so the market is fully determined by
    ``(dataset, rounds, seed)`` and replayable bit-identically.  Returns the
    materialisation together with its value model.
    """
    features = dataset_arrival_features(dataset, rounds, seed, hash_dimension=hash_dimension)
    rng = np.random.default_rng(seed)
    theta = _market_theta(rng, features.shape[1])
    reserves = reserve_fraction * np.array([float(row @ theta) for row in features])
    noise = noise_scale * (rng.random(features.shape[0]) - 0.5)
    batch = ArrivalBatch(features=features, reserve_values=reserves, noise=noise)
    model = LinearModel(theta)
    return materialize(model, batch), model


# --------------------------------------------------------------------------- #
# Feeds
# --------------------------------------------------------------------------- #


@dataclass
class ReplayFeed:
    """Closed-loop feed over a materialised market.

    Iterating yields ``(QuoteRequest, market_value)`` pairs in round order;
    the caller quotes, settles the sale against the market value, and feeds
    the outcome back.  Iterating again replays the identical sequence (the
    materialisation is immutable).
    """

    key: SessionKey
    materialized: MaterializedArrivals

    def __len__(self) -> int:
        return self.materialized.rounds

    def __iter__(self) -> Iterator[Tuple[QuoteRequest, float]]:
        for round_ in stream_rounds(self.materialized):
            yield (
                QuoteRequest(key=self.key, features=round_.features, reserve=round_.reserve),
                round_.market_value,
            )


def replay_feed(
    dataset: str,
    key: Optional[SessionKey] = None,
    rounds: int = 512,
    seed: int = 0,
    reserve_fraction: float = 0.6,
    noise_scale: float = 0.01,
    hash_dimension: int = 64,
) -> Tuple[ReplayFeed, LinearModel]:
    """A closed-loop replay feed over one dataset loader's arrivals.

    Returns ``(feed, model)`` — the model is what the session factory should
    pair with its pricer so posted prices translate through the same link.
    """
    materialized, model = dataset_replay_market(
        dataset,
        rounds=rounds,
        seed=seed,
        reserve_fraction=reserve_fraction,
        noise_scale=noise_scale,
        hash_dimension=hash_dimension,
    )
    if key is None:
        key = SessionKey(app=dataset, segment="seed=%d" % seed)
    return ReplayFeed(key=key, materialized=materialized), model


@dataclass
class SyntheticFeed:
    """Open-loop synthetic quote traffic (seeded, re-iterable).

    Yields bare :class:`QuoteRequest`\\ s — no outcomes, no feedback — from
    the golden-market uniform recipe.  Each iteration re-seeds its generator,
    so two passes over the same feed produce identical request sequences.
    """

    key: SessionKey
    dimension: int
    rounds: int
    seed: int = 0
    reserve_fraction: Optional[float] = 0.6
    _theta: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.dimension < 1:
            raise ValueError("dimension must be positive, got %d" % self.dimension)
        if self.rounds < 0:
            raise ValueError("rounds must be non-negative, got %d" % self.rounds)
        self._theta = _market_theta(np.random.default_rng(self.seed), self.dimension)

    def __len__(self) -> int:
        return self.rounds

    def __iter__(self) -> Iterator[QuoteRequest]:
        rng = np.random.default_rng(self.seed + 1)
        for _ in range(self.rounds):
            features = rng.random(self.dimension) + 0.05
            features /= np.linalg.norm(features)
            reserve = None
            if self.reserve_fraction is not None:
                reserve = self.reserve_fraction * float(features @ self._theta)
            yield QuoteRequest(key=self.key, features=features, reserve=reserve)
