"""Micro-batched quote service.

:class:`QuoteService` turns the batch simulator's pricers into a
request/response system.  Incoming :class:`~repro.serving.requests.
QuoteRequest`\\ s accumulate in a queue; a *drain* fires when the batch window
closes — either ``max_batch`` requests are waiting or the oldest has waited
``max_wait_seconds`` — and coalesces the queued requests into as few pricer
calls as possible:

* requests are grouped by session (first-come order preserved within a
  group);
* a group addressed to a stateless pricer (``supports_batch_propose``)
  becomes **one** columnar ``propose_batch`` call, expanded back to
  object-level decisions only for feedback bookkeeping;
* a group addressed to a learning pricer runs ``propose`` per request —
  feedback-dependent pricers cannot commit to several prices at once without
  changing semantics, which is exactly the engine's batching rule.

The feedback path mirrors this: :meth:`QuoteService.feedback_batch` applies a
whole window of accept/reject outcomes, using ``update_batch`` for stateless
sessions and ordered per-decision ``update`` calls for learning ones.

**Window semantics and exactness.**  Within one drain no feedback is applied
between the proposals of a group, so for a *learning* pricer a batch of k > 1
concurrent quotes is priced on the same knowledge state (decisions cannot see
each other's outcomes — they are concurrent).  A closed-loop driver that
waits for each quote's feedback before submitting the next
(:func:`repro.serving.loop.serve_closed_loop`) therefore reproduces the
offline engine transcript bit-identically, while an open-loop burst trades
exact sequential semantics for coalescing — the same trade the paper's
online setting makes under concurrent arrivals.

Per-quote latency is measured enqueue → response on the service clock (so it
includes queueing delay inside the window) and aggregated by the shared
:class:`repro.utils.metrics.LatencySummary`.
"""

from __future__ import annotations

import json
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field, replace
from typing import Callable, Deque, Dict, Iterable, List, Optional

import numpy as np

from repro.core.base import BatchDecisions
from repro.core.knowledge import EllipsoidKnowledge
from repro.core.pricing import EllipsoidPricer
from repro.exceptions import ServingError
from repro.serving.registry import PricerRegistry, PricingSession
from repro.serving.requests import FeedbackEvent, QuoteRequest, QuoteResponse
from repro.utils.metrics import LatencySummary
from repro.utils.timing import OnlineLatencyTracker


@dataclass(frozen=True)
class MicroBatchConfig:
    """The coalescing window of the quote queue.

    A drain fires as soon as either bound is hit: ``max_batch`` requests
    queued, or the oldest queued request older than ``max_wait_seconds``.
    ``max_batch=1`` (or ``max_wait_seconds=0``) degenerates to immediate
    per-request dispatch.
    """

    max_batch: int = 64
    max_wait_seconds: float = 0.001

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1, got %d" % self.max_batch)
        if self.max_wait_seconds < 0:
            raise ValueError(
                "max_wait_seconds must be non-negative, got %g" % self.max_wait_seconds
            )


@dataclass
class ServiceStats:
    """Operational counters of one :class:`QuoteService`."""

    quotes_served: int = 0
    drains: int = 0
    batched_proposals: int = 0
    feedback_applied: int = 0
    #: Stacked cross-session ellipsoid updates (one per backend kernel call;
    #: each covers every batched session of one family in the window).
    batched_updates: int = 0
    #: Sessions whose feedback went through a stacked update.
    batched_update_sessions: int = 0
    latency: OnlineLatencyTracker = field(default_factory=OnlineLatencyTracker)

    def latency_summary(self) -> LatencySummary:
        """p50/p99-style summary of the per-quote latencies."""
        return LatencySummary.from_seconds(self.latency.samples_seconds)


def _needs_cut(decision, allow_conservative_cuts: bool) -> bool:
    """Whether settling this pending decision would attempt a knowledge cut.

    Mirrors the guards of :meth:`EllipsoidPricer.update` exactly (non-skipped
    priced round, exploratory unless conservative cuts are enabled, and
    non-degenerate width along the cut direction).
    """
    if decision.skipped or decision.price is None:
        return False
    if not (decision.exploratory or allow_conservative_cuts):
        return False
    return decision.width > 1e-12


@dataclass
class _BatchedCutEntry:
    """One session's settled single-cut window, awaiting the stacked update."""

    session: PricingSession
    pricer: EllipsoidPricer
    group_size: int
    decision: object
    accepted: bool
    direction: np.ndarray
    offset: float
    sign: float
    family: tuple


class QuoteService:
    """The online pricing front end over a :class:`PricerRegistry`.

    Parameters
    ----------
    registry:
        Session store resolving :class:`~repro.serving.requests.SessionKey`
        to live pricers.
    config:
        Micro-batch window; defaults to :class:`MicroBatchConfig`.
    clock:
        Monotonic time source (injectable for deterministic window tests).
    first_quote_id:
        First quote id to assign.  A respawned shard worker is seeded past
        its dead predecessor's highest issued id, so a stale feedback event
        for a lost quote can never settle a fresh one by id collision.
    backend:
        Math-backend selector for the cross-session feedback fast path (see
        :mod:`repro.engine.equivalence`).  ``None`` / ``"reference"`` keep
        the bit-exact per-session update loop.  ``"batched"`` (numpy) /
        ``"batched-torch"`` settle each micro-batch window's single-cut
        ellipsoid sessions through **one** stacked Löwner–John update over
        their slab rows (``materialize_rows`` → stacked kernel →
        ``scatter_rows``) — relaxed-tier semantics.  Sessions that need
        multiple sequential cuts in one window, or use other pricer
        families, transparently fall back to the reference loop.
    """

    def __init__(
        self,
        registry: PricerRegistry,
        config: Optional[MicroBatchConfig] = None,
        clock: Callable[[], float] = time.perf_counter,
        first_quote_id: int = 0,
        backend: Optional[str] = None,
    ) -> None:
        if first_quote_id < 0:
            raise ValueError(
                "first_quote_id must be non-negative, got %d" % first_quote_id
            )
        self.registry = registry
        self.config = config or MicroBatchConfig()
        self._clock = clock
        self._queue: Deque[QuoteRequest] = deque()
        self._outbox: List[QuoteResponse] = []
        self._next_quote_id = first_quote_id
        self.stats = ServiceStats()
        self.backend = backend
        if backend in (None, "reference"):
            self._math_backend = None
        else:
            # Resolve eagerly: an unknown name or a missing optional
            # dependency (torch) fails at construction, not mid-feedback.
            from repro.core import batched_ellipsoid

            self._math_backend = batched_ellipsoid.get_backend(backend)

    # ------------------------------------------------------------------ #
    # Quote path
    # ------------------------------------------------------------------ #

    def submit(self, request: QuoteRequest) -> int:
        """Enqueue one request and return its assigned quote id.

        The service queues a private copy stamped with the quote id and the
        enqueue time — the caller's object is never mutated, so one request
        template can be resubmitted (each submission is an independent quote)
        without corrupting the pending bookkeeping of earlier submissions.
        """
        quote_id = self._next_quote_id
        self._next_quote_id += 1
        self._queue.append(
            replace(request, quote_id=quote_id, enqueued_at=self._clock())
        )
        return quote_id

    def submit_many(self, requests: Iterable[QuoteRequest]) -> List[int]:
        """Enqueue a batch of requests; returns their quote ids in order.

        Semantically identical to calling :meth:`submit` per request (same
        id assignment, same private stamped copies) with one clock read for
        the whole batch — the entry point the frontend's per-tick dispatch
        uses to enqueue a coalesced run of quote frames in one call.
        """
        now = self._clock()
        quote_ids: List[int] = []
        for request in requests:
            quote_id = self._next_quote_id
            self._next_quote_id += 1
            self._queue.append(replace(request, quote_id=quote_id, enqueued_at=now))
            quote_ids.append(quote_id)
        return quote_ids

    @property
    def queued(self) -> int:
        """Requests currently waiting in the micro-batch window."""
        return len(self._queue)

    def queued_for(self, key) -> int:
        """Requests of one session waiting in the micro-batch window.

        The rebalancer's quiesce probe: a session is drained once nothing of
        it is queued here and nothing is pending in its registry session.
        """
        return sum(1 for request in self._queue if request.key == key)

    def window_closed(self, now: Optional[float] = None) -> bool:
        """Whether the micro-batch window has closed (a drain would fire)."""
        if not self._queue:
            return False
        if len(self._queue) >= self.config.max_batch:
            return True
        now = self._clock() if now is None else now
        return (now - self._queue[0].enqueued_at) >= self.config.max_wait_seconds

    def poll(self, now: Optional[float] = None) -> List[QuoteResponse]:
        """Drain the queue if the window has closed; return ready responses."""
        if self.window_closed(now):
            self._drain()
        return self._take_outbox()

    def flush(self) -> List[QuoteResponse]:
        """Drain the queue unconditionally; return all ready responses."""
        self._drain()
        return self._take_outbox()

    def quote(self, request: QuoteRequest) -> QuoteResponse:
        """Submit one request and serve it immediately (synchronous path).

        Any other queued requests are drained along with it; their responses
        stay in the outbox for the next :meth:`poll` / :meth:`flush`.

        Failure accounting: when *another* session group fails mid-drain the
        synchronous caller's request must not be silently stranded.  Three
        cases, all reported through the raised :class:`ServingError`:

        * the caller's group was served *before* the failure — its response
          is popped from the outbox and handed over as ``error.response``
          (nobody else would ever collect it);
        * the caller's group was requeued (ordered *after* the failing
          group) — the request is cancelled (pulled back out of the queue,
          it will never be double-served) and the error names the caller's
          quote id in ``lost_quote_ids``;
        * the caller's own group failed — the drain error already names the
          quote id as lost and is re-raised as-is.
        """
        quote_id = self.submit(request)
        try:
            self._drain()
        except ServingError as exc:
            if quote_id in exc.requeued_quote_ids:
                self._cancel_queued(quote_id)
                exc.requeued_quote_ids.remove(quote_id)
                raise ServingError(
                    "quote %d cancelled: session %s failed while draining an "
                    "earlier group (resubmit the request): %s"
                    % (quote_id, exc.key, exc),
                    key=exc.key,
                    # The caller's cancelled quote first, then the failing
                    # group's quotes — all of them will never be served, and
                    # consumers (waiter notification, shard queue-depth
                    # accounting) repair state from this list.
                    lost_quote_ids=[quote_id] + exc.lost_quote_ids,
                    requeued_quote_ids=exc.requeued_quote_ids,
                ) from exc
            for index, response in enumerate(self._outbox):
                if response.quote_id == quote_id:
                    exc.response = self._outbox.pop(index)
                    break
            raise
        for index, response in enumerate(self._outbox):
            if response.quote_id == quote_id:
                return self._outbox.pop(index)
        raise ServingError("drain produced no response for quote %d" % quote_id)

    def _cancel_queued(self, quote_id: int) -> bool:
        """Remove one not-yet-served request from the queue by quote id.

        Deletes by index — ``deque.remove`` would go through the dataclass
        ``__eq__``, which compares numpy feature arrays and raises on any
        other same-key request ahead in the queue.
        """
        for index, queued in enumerate(self._queue):
            if queued.quote_id == quote_id:
                del self._queue[index]
                return True
        return False

    # ------------------------------------------------------------------ #
    # Feedback path
    # ------------------------------------------------------------------ #

    def feedback(self, event: FeedbackEvent) -> None:
        """Apply one accept/reject outcome to its session's pricer."""
        session = self._session_for_feedback(event.key)
        decision = self._settle(session, event)
        cuts_before = getattr(session.pricer, "cuts_applied", None)
        session.pricer.update(decision, event.accepted)
        self._note_scalar_update(session, cuts_before)
        self.registry.note_feedback(session)
        self.stats.feedback_applied += 1

    def feedback_batch(self, events: Iterable[FeedbackEvent]) -> None:
        """Apply a window of outcomes, coalescing per session.

        Stateless sessions take the whole group through one ``update_batch``
        call; learning sessions apply ordered per-decision ``update`` calls
        (order is semantics for them — each cut changes the next update's
        knowledge state).  With a relaxed-tier :attr:`backend`, ellipsoid
        sessions whose window requires at most one cut are instead collected
        **across sessions** and settled through one stacked Löwner–John
        update per pricer family (cuts of *different* sessions touch
        disjoint ellipsoids, so stacking them loses no ordering semantics).
        """
        groups: "OrderedDict" = OrderedDict()
        for event in events:
            groups.setdefault(event.key, []).append(event)
        deferred: List[_BatchedCutEntry] = []
        for key, group in groups.items():
            session = self._session_for_feedback(key)
            pricer = session.pricer
            # Validate the whole group before settling or updating anything:
            # a bad quote id (e.g. a client retry, or a duplicate within the
            # window) must not strand valid outcomes behind popped decisions
            # or half-applied updates.
            seen = set()
            for event in group:
                if event.quote_id not in session.pending or event.quote_id in seen:
                    raise ServingError(
                        "feedback for unknown, duplicate, or already-settled "
                        "quote %d on session %s" % (event.quote_id, session.key)
                    )
                seen.add(event.quote_id)
            if getattr(pricer, "supports_batch_propose", False):
                decisions = [self._settle(session, event) for event in group]
                batch = BatchDecisions(
                    link_prices=np.array(
                        [np.nan if d.price is None else float(d.price) for d in decisions]
                    ),
                    exploratory=np.array([d.exploratory for d in decisions], dtype=bool),
                    skipped=np.array([d.skipped for d in decisions], dtype=bool),
                )
                pricer.update_batch(
                    batch, np.array([event.accepted for event in group], dtype=bool)
                )
                self.registry.mark_stale(session)
                self.registry.note_feedback(session, count=len(group))
                self.stats.feedback_applied += len(group)
                continue
            entry = self._defer_for_batched_cut(session, group)
            if entry is not None:
                deferred.append(entry)
                continue
            cuts_before = getattr(pricer, "cuts_applied", None)
            for event in group:
                decision = self._settle(session, event)
                pricer.update(decision, event.accepted)
            self._note_scalar_update(session, cuts_before)
            self.registry.note_feedback(session, count=len(group))
            self.stats.feedback_applied += len(group)
        if deferred:
            self._apply_batched_feedback(deferred)

    def feedback_many(self, events: Iterable[FeedbackEvent]) -> List[Optional[Exception]]:
        """Apply a mixed window of outcomes with **per-event** results.

        Groups by session exactly like :meth:`feedback_batch` and applies
        each group all-or-nothing through it, but instead of raising on the
        first bad group it returns one outcome per input event, aligned with
        the input order: ``None`` for an applied event, the exception for a
        failed one.  This is the frontend's coalesced-dispatch entry point —
        one executor hop applies a whole tick's feedback frames while
        keeping the per-frame acknowledge/error granularity of the protocol
        (a naive batch-then-retry would mis-report the already-applied
        events of a partially failed batch as errors).
        """
        events = list(events)
        outcomes: List[Optional[Exception]] = [None] * len(events)
        groups: "OrderedDict" = OrderedDict()
        for index, event in enumerate(events):
            groups.setdefault(event.key, []).append(index)
        for key, indices in groups.items():
            try:
                self.feedback_batch([events[index] for index in indices])
            except (ServingError, TypeError, ValueError) as exc:
                for index in indices:
                    outcomes[index] = exc
        return outcomes

    # ------------------------------------------------------------------ #
    # Cross-session batched feedback (relaxed tier)
    # ------------------------------------------------------------------ #

    def _note_scalar_update(self, session, cuts_before) -> None:
        """Flag the slab row stale when a scalar update changed pricer state.

        Ellipsoid-family pricers expose ``cuts_applied`` — geometry changes
        iff the counter moved, so no-op feedback stays cheap.  Pricers
        without the counter (SGD and friends) mutate on every update; their
        rows are flagged unconditionally.
        """
        if cuts_before is None or getattr(session.pricer, "cuts_applied", None) != cuts_before:
            self.registry.mark_stale(session)

    def _defer_for_batched_cut(self, session, group) -> Optional["_BatchedCutEntry"]:
        """Settle one window group for the stacked update, if eligible.

        Eligible means: a relaxed-tier backend is configured, the session's
        pricer is an :class:`EllipsoidPricer` over ellipsoid knowledge, the
        group covers *all* of the session's in-flight quotes (so pending is
        empty after settling — the :meth:`scatter_rows` precondition), and
        exactly one event requires a cut.  Zero-cut groups gain nothing from
        the kernel and multi-cut groups are order-dependent within the
        session; both run the reference loop.  Returns ``None`` (nothing
        settled) when ineligible.
        """
        if self._math_backend is None:
            return None
        pricer = session.pricer
        if not isinstance(pricer, EllipsoidPricer):
            return None
        if not isinstance(pricer.knowledge, EllipsoidKnowledge):
            return None
        if len(session.pending) != len(group):
            return None
        allow_conservative_cuts = pricer.config.allow_conservative_cuts
        cut_events = [
            event
            for event in group
            if _needs_cut(session.pending[event.quote_id], allow_conservative_cuts)
        ]
        if len(cut_events) != 1:
            return None
        cut_event = cut_events[0]
        cut_decision = None
        for event in group:
            decision = self._settle(session, event)
            if event is cut_event:
                cut_decision = decision
        delta = pricer.config.delta
        if cut_event.accepted:
            offset, sign = cut_decision.price - delta, -1.0  # keep 'geq'
        else:
            offset, sign = cut_decision.price + delta, 1.0  # keep 'leq'
        return _BatchedCutEntry(
            session=session,
            pricer=pricer,
            group_size=len(group),
            decision=cut_decision,
            accepted=cut_event.accepted,
            direction=np.asarray(cut_decision.features, dtype=float),
            offset=float(offset),
            sign=sign,
            family=(type(pricer).__name__, pricer.config.dimension),
        )

    def _apply_batched_feedback(self, entries: List["_BatchedCutEntry"]) -> None:
        """One stacked Löwner–John update per pricer family.

        Each entry is one session with exactly one settled cut-requiring
        outcome.  Per family: gather the sessions' slab rows
        (``materialize_rows(refresh="stale")`` — only rows diverged by a
        scalar update pay the state round-trip), run the backend's stacked
        kernel over all of them at once, propagate each updated item's new
        geometry and cut counters onto its live pricer directly, and write
        the rows back through ``scatter_rows(update_pricers=False)`` (slab
        only — the live objects are already current), patching the updated
        skeletons' cut counters on the way.  If a family's slab rows don't
        have the expected ``(k, n)`` / ``(k, n, n)`` layout the family falls
        back to per-session scalar updates.
        """
        families: "OrderedDict" = OrderedDict()
        for entry in entries:
            families.setdefault(entry.family, []).append(entry)
        for family_entries in families.values():
            keys = [entry.session.key for entry in family_entries]
            dimension = family_entries[0].pricer.config.dimension
            count = len(family_entries)
            rows = self.materialize_rows(keys, refresh="stale")
            if (
                len(rows.arrays) != 2
                or rows.arrays[0].shape != (count, dimension)
                or rows.arrays[1].shape != (count, dimension, dimension)
            ):
                self._scalar_cut_fallback(family_entries)
                continue
            directions = np.stack([entry.direction for entry in family_entries])
            offsets = np.array([entry.offset for entry in family_entries])
            signs = np.array([entry.sign for entry in family_entries])
            result = self._math_backend.batched_cut(
                rows.arrays[0], rows.arrays[1], directions, offsets, signs
            )
            rows.arrays[0][...] = result.centers
            rows.arrays[1][...] = result.shapes
            for position in np.flatnonzero(result.updated):
                skeleton = json.loads(rows.skeletons[position])
                skeleton["cuts_applied"] += 1
                skeleton["knowledge"]["cut_count"] += 1
                rows.skeletons[position] = json.dumps(
                    skeleton, separators=(",", ":")
                )
                pricer = family_entries[position].pricer
                ellipsoid = pricer.knowledge.ellipsoid
                # The kernel re-symmetrised these rows; copies detach them
                # from the stacked result buffer.
                ellipsoid.center = result.centers[position].copy()
                ellipsoid.shape = result.shapes[position].copy()
                pricer.knowledge.cut_count += 1
                pricer.cuts_applied += 1
            self.scatter_rows(rows, update_pricers=False)
            self.stats.batched_updates += 1
            self.stats.batched_update_sessions += count
            # Write-behind accounting runs after the scatter, so a persist
            # triggered here snapshots the post-cut state.
            for entry in family_entries:
                self.registry.note_feedback(entry.session, count=entry.group_size)
                self.stats.feedback_applied += entry.group_size

    def _scalar_cut_fallback(self, family_entries: List["_BatchedCutEntry"]) -> None:
        """Reference-path updates for already-settled deferred entries."""
        for entry in family_entries:
            cuts_before = getattr(entry.pricer, "cuts_applied", None)
            entry.pricer.update(entry.decision, entry.accepted)
            self._note_scalar_update(entry.session, cuts_before)
            self.registry.note_feedback(entry.session, count=entry.group_size)
            self.stats.feedback_applied += entry.group_size

    # ------------------------------------------------------------------ #
    # Contiguous row slices
    # ------------------------------------------------------------------ #

    def materialize_rows(self, keys, refresh=True):
        """Contiguous struct-of-arrays slices of same-family sessions.

        The columnar hand-off between a ``submit_many`` window and the
        engine: after the window's quotes settle, the touched sessions'
        state can be gathered into one ``(k, ...)``-per-leaf batch
        (:meth:`repro.serving.store.SessionStore.materialize_rows`), pushed
        through a batched backend in a single call, and scattered back with
        :meth:`scatter_rows` — instead of k object-protocol round trips.
        Sessions with in-flight quotes may be materialized (it only reads
        state), but must be settled before scattering results back.
        """
        return self.registry.materialize_rows(keys, refresh=refresh)

    def scatter_rows(self, materialized, update_pricers: bool = True) -> int:
        """Write materialized slices back into slab rows and live pricers.

        Refuses sessions that picked up in-flight quotes since
        :meth:`materialize_rows`: their pending decisions were priced on
        the pre-batch state, and overwriting it would settle their feedback
        against state they never saw.  ``update_pricers=False`` writes slab
        rows only (the caller already propagated results onto the live
        pricers).
        """
        for key in materialized.keys:
            session = self.registry.peek(key)
            if session is not None and session.pending:
                raise ServingError(
                    "cannot scatter rows onto session %s with %d in-flight "
                    "quote(s); settle their feedback first"
                    % (key, len(session.pending))
                )
        return self.registry.scatter_rows(materialized, update_pricers=update_pricers)

    def _session_for_feedback(self, key) -> PricingSession:
        """Resolve a feedback target without creating (or LRU-thrashing) it.

        Feedback can only apply to a session that served the quote and is
        still resident; a lookup through :meth:`PricerRegistry.session`
        would *create* sessions for mistyped keys — and could evict a
        legitimate cold one on the way — before the quote-id check fires.
        """
        session = self.registry.peek(key)
        if session is None:
            raise ServingError("feedback for session %s, which is not resident" % (key,))
        return session

    def _settle(self, session: PricingSession, event: FeedbackEvent):
        decision = session.pending.pop(event.quote_id, None)
        if decision is None:
            raise ServingError(
                "feedback for unknown or already-settled quote %d on session %s"
                % (event.quote_id, session.key)
            )
        return decision

    # ------------------------------------------------------------------ #
    # Drain
    # ------------------------------------------------------------------ #

    def _take_outbox(self) -> List[QuoteResponse]:
        out, self._outbox = self._outbox, []
        return out

    def _drain(self) -> None:
        """Coalesce the queued requests into pricer calls (one per session
        for stateless pricers) and move their responses to the outbox.

        Failure containment: a pricer (or factory) exception must not make
        queued requests vanish.  Requests of *later* session groups are
        untouched and go back to the front of the queue; the failing group's
        unserved requests are named in the raised :class:`ServingError`
        (its ``__cause__`` is the original exception).  Already-emitted
        responses stay valid.
        """
        if not self._queue:
            return
        requests = list(self._queue)
        self._queue.clear()
        self.stats.drains += 1

        groups: "OrderedDict" = OrderedDict()
        for request in requests:
            groups.setdefault(request.key, []).append(request)

        group_list = list(groups.items())
        for group_index, (key, group) in enumerate(group_list):
            # Emissions are counted by outbox growth, which is exact on both
            # serve paths: every served request appends exactly one response
            # (and a failure inside an emission appends nothing), so a
            # mid-group failure — including one in the batched path's
            # ``model.link`` expansion — never reports already-served quotes
            # as lost or leaks their pending entries.
            emitted_before = len(self._outbox)
            try:
                self._serve_group(key, group)
            except Exception as exc:
                served = len(self._outbox) - emitted_before
                # Everything after the failing group never started — requeue
                # in arrival order so the next drain serves it.
                for _, later_group in reversed(group_list[group_index + 1 :]):
                    self._queue.extendleft(reversed(later_group))
                requeued = [
                    request.quote_id
                    for _, later_group in group_list[group_index + 1 :]
                    for request in later_group
                ]
                lost = [request.quote_id for request in group[served:]]
                self.stats.quotes_served += served
                raise ServingError(
                    "session %s failed while serving quote(s) %s: %s"
                    % (key, lost, exc),
                    key=key,
                    lost_quote_ids=lost,
                    requeued_quote_ids=requeued,
                ) from exc
            self.stats.quotes_served += len(group)

    def _serve_group(self, key, group) -> None:
        """Serve one session's requests, one emitted response per request.

        Progress is observable through the outbox (each emission appends
        exactly one response), which is what :meth:`_drain` uses for both
        success and failure accounting on both paths — there is deliberately
        no separate served counter here.
        """
        session = self.registry.session(key)
        pricer = session.pricer
        if len(group) > 1 and getattr(pricer, "supports_batch_propose", False):
            start_index = pricer.rounds_seen
            features = np.vstack(
                [np.atleast_1d(np.asarray(r.features, dtype=float)) for r in group]
            )
            reserves = np.array(
                [np.nan if r.reserve is None else float(r.reserve) for r in group]
            )
            batch = pricer.propose_batch(features, reserves)
            decisions = batch.to_decisions(features, reserves, start_index)
            self.stats.batched_proposals += 1
            for request, decision in zip(group, decisions):
                self._emit(session, request, decision)
            return
        # Sequential path: propose and emit per request, so partial progress
        # survives a mid-group pricer failure.
        for request in group:
            decision = pricer.propose(request.features, reserve=request.reserve)
            self._emit(session, request, decision)

    def _emit(self, session: PricingSession, request: QuoteRequest, decision) -> None:
        """Record one decision: pending entry, latency sample, response."""
        if decision.skipped or decision.price is None:
            link_price = None
            posted_price = None
        else:
            link_price = float(decision.price)
            posted_price = session.model.link(link_price)
        session.pending[request.quote_id] = decision
        session.quotes_served += 1
        # Clamp once and report the same value everywhere: an injected clock
        # that steps backwards must not make the response's latency disagree
        # with the recorded statistics (latency is elapsed time; negative
        # readings are clock artifacts, floored to zero).
        latency = max(0.0, self._clock() - request.enqueued_at)
        self.stats.latency.record(latency)
        self._outbox.append(
            QuoteResponse(
                quote_id=request.quote_id,
                key=session.key,
                link_price=link_price,
                posted_price=posted_price,
                exploratory=decision.exploratory,
                skipped=decision.skipped,
                round_index=decision.round_index,
                latency_seconds=latency,
            )
        )
