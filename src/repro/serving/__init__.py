"""Online quote-serving subsystem.

This package turns the batch simulator into a request/response pricing
service — the paper's Section V-D *online* story (millisecond per-round quote
latency under live arrivals) as an actual serving layer:

* :mod:`repro.serving.store` — :class:`SessionStore`, the columnar state
  backend: per-family struct-of-arrays slabs, O(1) clock-hand eviction, and
  mmap-backed snapshot segments with a JSONL index sidecar (the legacy
  file-per-session ``.npz`` format stays readable and is the default);
* :mod:`repro.serving.registry` — :class:`PricerRegistry`, the session
  facade keyed by ``(app, segment)`` that hydrates pricers from snapshots,
  persists them on a write-behind cadence, and evicts cold sessions;
* :mod:`repro.serving.service` — :class:`QuoteService`, a micro-batching
  quote queue that coalesces concurrent requests within a time/size window
  into columnar ``propose_batch`` calls where legal, plus the feedback path
  applying accept/reject outcomes through ``update_batch`` / ``update``;
* :mod:`repro.serving.feeds` — open-loop synthetic generators and
  closed-loop replay feeds over the dataset loaders (``loans``,
  ``ad_clicks``, ``listings``) and any materialised market;
* :mod:`repro.serving.loop` — :func:`serve_closed_loop`, the round-by-round
  driver whose transcript is bit-identical to the offline engine
  (``tests/serving/`` pins this for every golden pricer family);
* :mod:`repro.serving.sharding` — :class:`ShardedRegistry`, a router hashing
  session keys across N worker processes (one registry + service per
  worker, quote/feedback dispatch over pipes, per-shard snapshot dirs);
* :mod:`repro.serving.wire` — the framing layer and both wire formats
  (length-prefixed JSON v1 and the columnar binary v2 negotiated per
  connection), shared by the server and both clients;
* :mod:`repro.serving.frontend` — :class:`QuoteFrontend`, the asyncio socket
  server (either wire format over TCP or unix socket) over either backend,
  dispatching each event-loop tick's frames as one coalesced backend call,
  with bounded-waiter / per-connection-budget / slow-reader backpressure,
  plus the synchronous :class:`QuoteSocketClient` and
  :func:`serve_closed_loop_socket`, the through-the-wire twin of the
  closed-loop driver;
* :mod:`repro.serving.client` — :class:`AsyncQuoteClient`, the pipelined
  asyncio client (multiple outstanding requests per connection, futures
  keyed by request tag) and :func:`serve_closed_loop_async`;
* :mod:`repro.serving.resharding` — **offline** snapshot migration between
  shard counts: rewrite per-shard snapshot dirs from N to M shards under
  the stable key hash, with exact-state verification
  (``scripts/reshard.py`` is the CLI);
* :mod:`repro.serving.rebalance` — **online** N→M resharding:
  :class:`LiveRebalancer` re-homes sessions one at a time through the
  router's per-session quiesce (park admissions, drain, move the
  checkpoint, replay parked quotes on the target shard) while every other
  session keeps serving, then commits the versioned routing table
  (``scripts/rebalance.py`` is the CLI).

Load generation lives in ``scripts/bench_serving.py`` (quotes/sec, p50/p99
quote latency, replay-at-rate pacing — in-process and through the socket —
and shard scaling → ``BENCH_serving.json``).
"""

from repro.serving.client import AsyncQuoteClient, serve_closed_loop_async
from repro.serving.feeds import (
    REPLAY_DATASETS,
    ReplayFeed,
    SyntheticFeed,
    dataset_arrival_features,
    dataset_replay_market,
    replay_feed,
)
from repro.serving.frontend import (
    FrameDecoder,
    FrontendHandle,
    FrontendStats,
    QuoteFrontend,
    QuoteSocketClient,
    frame_sold_at,
    serve_closed_loop_socket,
    start_frontend_thread,
)
from repro.serving.loop import serve_closed_loop
from repro.serving.rebalance import (
    LiveRebalancer,
    RebalanceReport,
    SessionRebalance,
    rebalance_live,
)
from repro.serving.registry import PricerRegistry, PricingSession, RegistryStats
from repro.serving.requests import FeedbackEvent, QuoteRequest, QuoteResponse, SessionKey
from repro.serving.resharding import (
    ReshardReport,
    SessionMove,
    plan_reshard,
    reshard_snapshots,
    verify_reshard,
)
from repro.serving.service import MicroBatchConfig, QuoteService, ServiceStats
from repro.serving.sharding import RoutingTable, ShardedRegistry, shard_of_key
from repro.serving.store import (
    MaterializedRows,
    SegmentLog,
    SessionStore,
    export_segments_to_legacy,
    list_segment_sessions,
)
from repro.serving.wire import WIRE_V1, WIRE_V2

__all__ = [
    "AsyncQuoteClient",
    "FeedbackEvent",
    "FrameDecoder",
    "FrontendHandle",
    "FrontendStats",
    "LiveRebalancer",
    "MaterializedRows",
    "MicroBatchConfig",
    "PricerRegistry",
    "PricingSession",
    "QuoteFrontend",
    "QuoteRequest",
    "QuoteResponse",
    "QuoteService",
    "QuoteSocketClient",
    "REPLAY_DATASETS",
    "RebalanceReport",
    "RegistryStats",
    "ReplayFeed",
    "ReshardReport",
    "RoutingTable",
    "SegmentLog",
    "ServiceStats",
    "SessionKey",
    "SessionMove",
    "SessionRebalance",
    "SessionStore",
    "ShardedRegistry",
    "SyntheticFeed",
    "WIRE_V1",
    "WIRE_V2",
    "dataset_arrival_features",
    "dataset_replay_market",
    "export_segments_to_legacy",
    "frame_sold_at",
    "list_segment_sessions",
    "plan_reshard",
    "rebalance_live",
    "replay_feed",
    "reshard_snapshots",
    "serve_closed_loop",
    "serve_closed_loop_async",
    "serve_closed_loop_socket",
    "shard_of_key",
    "start_frontend_thread",
    "verify_reshard",
]
