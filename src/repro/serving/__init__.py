"""Online quote-serving subsystem.

This package turns the batch simulator into a request/response pricing
service — the paper's Section V-D *online* story (millisecond per-round quote
latency under live arrivals) as an actual serving layer:

* :mod:`repro.serving.registry` — :class:`PricerRegistry`, a session store
  keyed by ``(app, segment)`` that hydrates pricers from checkpoint ``.npz``
  snapshots, persists them on a write-behind cadence, and LRU-evicts cold
  sessions;
* :mod:`repro.serving.service` — :class:`QuoteService`, a micro-batching
  quote queue that coalesces concurrent requests within a time/size window
  into columnar ``propose_batch`` calls where legal, plus the feedback path
  applying accept/reject outcomes through ``update_batch`` / ``update``;
* :mod:`repro.serving.feeds` — open-loop synthetic generators and
  closed-loop replay feeds over the dataset loaders (``loans``,
  ``ad_clicks``, ``listings``) and any materialised market;
* :mod:`repro.serving.loop` — :func:`serve_closed_loop`, the round-by-round
  driver whose transcript is bit-identical to the offline engine
  (``tests/serving/`` pins this for every golden pricer family).

Load generation lives in ``scripts/bench_serving.py`` (quotes/sec, p50/p99
quote latency, sessions resident → ``BENCH_serving.json``).
"""

from repro.serving.feeds import (
    REPLAY_DATASETS,
    ReplayFeed,
    SyntheticFeed,
    dataset_arrival_features,
    dataset_replay_market,
    replay_feed,
)
from repro.serving.loop import serve_closed_loop
from repro.serving.registry import PricerRegistry, PricingSession, RegistryStats
from repro.serving.requests import FeedbackEvent, QuoteRequest, QuoteResponse, SessionKey
from repro.serving.service import MicroBatchConfig, QuoteService, ServiceStats

__all__ = [
    "FeedbackEvent",
    "MicroBatchConfig",
    "PricerRegistry",
    "PricingSession",
    "QuoteRequest",
    "QuoteResponse",
    "QuoteService",
    "REPLAY_DATASETS",
    "RegistryStats",
    "ReplayFeed",
    "ServiceStats",
    "SessionKey",
    "SyntheticFeed",
    "dataset_arrival_features",
    "dataset_replay_market",
    "replay_feed",
    "serve_closed_loop",
]
