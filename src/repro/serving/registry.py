"""Checkpoint-backed pricing-session registry (facade over the store).

A *session* is one live pricer (plus its market value model) serving one
traffic segment.  The :class:`PricerRegistry` owns every resident session and
gives the serving layer three lifecycle guarantees:

* **hydration** — a session whose snapshot exists under ``snapshot_dir`` is
  rebuilt from it: the factory constructs a fresh, same-configuration pricer
  and the checkpoint subsystem (:mod:`repro.engine.checkpoint`) restores its
  exact state, so a restarted service continues pricing bit-identically to
  an uninterrupted one (the same exact-resume contract the offline chunked
  runner is pinned to);
* **write-behind persistence** — with ``persist_every=N``, a session's state
  is snapshotted after every N-th feedback update (and always on eviction
  and :meth:`~PricerRegistry.flush`), bounding the feedback loss of a crash
  to the last N updates without putting serialisation on the quote hot path;
* **clock-hand eviction** — with ``max_sessions`` set, a cold session is
  persisted and dropped when capacity is exceeded, chosen by a second-chance
  clock sweep (O(1) amortised per eviction).  Sessions with in-flight quotes
  (pending decisions awaiting feedback) are never evicted — a decision
  object cannot be rebuilt from a snapshot.

Since PR 9 the mechanics live in :mod:`repro.serving.store`: state is
captured into per-family struct-of-arrays slabs, and snapshots are written
either as legacy file-per-session ``.session.npz`` checkpoints (the default,
interchangeable with offline sweeps) or as mmap-backed segment files
(``snapshot_format="segment"``) whose hydration is a zero-copy slice.  This
module keeps the stable public surface — ``session`` / ``peek`` / ``pin`` /
``evict`` / ``flush`` / ``export_session`` — that :class:`QuoteService`,
:class:`~repro.serving.sharding.ShardedRegistry`, and the live rebalancer
are built against.
"""

from __future__ import annotations

from typing import List, Optional

from repro.serving.requests import SessionKey
from repro.serving.store import (
    DEFAULT_SEGMENT_BYTES,
    SESSION_SUFFIX,
    SNAPSHOT_FORMATS,
    MaterializedRows,
    PricingSession,
    RegistryStats,
    SessionFactory,
    SessionStore,
)

__all__ = [
    "SESSION_SUFFIX",
    "SNAPSHOT_FORMATS",
    "SessionFactory",
    "PricingSession",
    "RegistryStats",
    "PricerRegistry",
]


class PricerRegistry:
    """Session registry keyed by :class:`SessionKey` with bounded residency.

    A thin facade over :class:`repro.serving.store.SessionStore` — every
    method delegates, and the store is reachable as :attr:`store` for the
    columnar row APIs and bench introspection.

    Parameters
    ----------
    factory:
        Builds ``(model, pricer)`` for a key.  The pricer must be freshly
        constructed with the session's configuration — hydration loads only
        the mutable state into it (the checkpoint contract).
    snapshot_dir:
        Directory of session snapshots.  ``None`` disables persistence:
        evicted sessions lose their state and hydration never happens.
    max_sessions:
        Resident-session capacity; ``None`` means unbounded.
    persist_every:
        Write-behind cadence in feedback updates; ``0`` persists only on
        eviction / flush.
    snapshot_format:
        ``"legacy"`` (file-per-session ``.npz``, the default) or
        ``"segment"`` (shared mmap segment files + index journal).
    segment_max_bytes:
        Segment-file rotation threshold (segment format only).
    """

    def __init__(
        self,
        factory: SessionFactory,
        snapshot_dir: Optional[str] = None,
        max_sessions: Optional[int] = None,
        persist_every: int = 0,
        snapshot_format: str = "legacy",
        segment_max_bytes: int = DEFAULT_SEGMENT_BYTES,
    ) -> None:
        self.store = SessionStore(
            factory,
            snapshot_dir=snapshot_dir,
            max_sessions=max_sessions,
            persist_every=persist_every,
            snapshot_format=snapshot_format,
            segment_max_bytes=segment_max_bytes,
        )

    @property
    def stats(self) -> RegistryStats:
        return self.store.stats

    # ------------------------------------------------------------------ #
    # Lookup / residency
    # ------------------------------------------------------------------ #

    def session(self, key: SessionKey) -> PricingSession:
        """The resident session for ``key``, creating or hydrating it."""
        return self.store.session(key)

    def peek(self, key: SessionKey) -> Optional[PricingSession]:
        """The resident session for ``key`` without touching recency."""
        return self.store.peek(key)

    @property
    def resident_count(self) -> int:
        """Number of sessions currently resident."""
        return self.store.resident_count

    @property
    def resident_keys(self) -> List[SessionKey]:
        """Resident keys in LRU → MRU order."""
        return self.store.resident_keys

    def __contains__(self, key: SessionKey) -> bool:
        return key in self.store

    def pin(self, key: SessionKey) -> None:
        """Exempt a resident session from eviction until :meth:`unpin`."""
        self.store.pin(key)

    def unpin(self, key: SessionKey) -> None:
        """Lift a session's eviction exemption (no-op when not resident)."""
        self.store.unpin(key)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def snapshot_path(self, key: SessionKey) -> Optional[str]:
        """The legacy snapshot file for ``key`` (``None`` = persistence off)."""
        return self.store.snapshot_path(key)

    def persist(self, session: PricingSession) -> bool:
        """Snapshot one session to disk; returns whether anything was written."""
        return self.store.persist(session)

    def note_feedback(self, session: PricingSession, count: int = 1) -> None:
        """Record ``count`` applied feedback updates (write-behind cadence)."""
        self.store.note_feedback(session, count)

    def mark_stale(self, session: PricingSession) -> None:
        """Flag that the session's pricer mutated outside the row data path."""
        self.store.mark_stale(session)

    def flush(self) -> int:
        """Persist every resident session; returns the number written."""
        return self.store.flush()

    def export_session(self, key: SessionKey) -> str:
        """Persist one quiesced session as a legacy file and drop it."""
        return self.store.export_session(key)

    def materialize_legacy(self, key: SessionKey) -> Optional[str]:
        """Ensure a cold session exists as a legacy file (segment → ``.npz``)."""
        return self.store.materialize_legacy(key)

    def evict(self, key: SessionKey) -> bool:
        """Persist and drop one session; returns whether it was resident."""
        return self.store.evict(key)

    # ------------------------------------------------------------------ #
    # Contiguous row slices
    # ------------------------------------------------------------------ #

    def materialize_rows(self, keys, refresh=True) -> MaterializedRows:
        """Contiguous struct-of-arrays slices of same-family sessions."""
        return self.store.materialize_rows(keys, refresh=refresh)

    def scatter_rows(
        self, materialized: MaterializedRows, update_pricers: bool = True
    ) -> int:
        """Write materialized slices back into slab rows and live pricers."""
        return self.store.scatter_rows(materialized, update_pricers=update_pricers)

    def close(self) -> None:
        self.store.close()
