"""Checkpoint-backed pricing-session store.

A *session* is one live pricer (plus its market value model) serving one
traffic segment.  The :class:`PricerRegistry` owns every resident session and
gives the serving layer three lifecycle guarantees:

* **hydration** — a session whose snapshot file exists under
  ``snapshot_dir`` is rebuilt from it: the factory constructs a fresh,
  same-configuration pricer and the checkpoint subsystem
  (:mod:`repro.engine.checkpoint`) restores its exact state, so a restarted
  service continues pricing bit-identically to an uninterrupted one (the
  same exact-resume contract the offline chunked runner is pinned to);
* **write-behind persistence** — with ``persist_every=N``, a session's state
  is snapshotted after every N-th feedback update (and always on eviction
  and :meth:`~PricerRegistry.flush`), bounding the feedback loss of a crash
  to the last N updates without putting ``.npz`` serialisation on the quote
  hot path;
* **LRU eviction** — with ``max_sessions`` set, the least-recently-used cold
  session is persisted and dropped when capacity is exceeded.  Sessions with
  in-flight quotes (pending decisions awaiting feedback) are never evicted —
  a decision object cannot be rebuilt from a snapshot.

Snapshots are ordinary pricer checkpoints (versioned no-pickle ``.npz``), so
an offline sweep can be warm-started from a serving session's file and vice
versa.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.engine import checkpoint as checkpoint_store
from repro.exceptions import ServingError
from repro.serving.requests import SessionKey

#: A factory builds (model, fresh same-config pricer) for one session key.
SessionFactory = Callable[[SessionKey], Tuple[Any, Any]]

#: Suffix of session snapshot files written by :class:`PricerRegistry`
#: (:mod:`repro.serving.resharding` re-exports it for the offline tools).
SESSION_SUFFIX = ".session.npz"


@dataclass
class PricingSession:
    """One resident pricing session."""

    key: SessionKey
    model: Any
    pricer: Any
    #: Decisions awaiting accept/reject feedback, keyed by quote id.
    pending: Dict[int, Any] = field(default_factory=dict)
    quotes_served: int = 0
    feedback_seen: int = 0
    updates_since_persist: int = 0
    hydrated: bool = False
    #: Pinned sessions are exempt from LRU eviction (and refuse explicit
    #: eviction) — the online rebalancer pins a freshly-attached session
    #: until its parked quotes have been replayed onto it.
    pinned: bool = False

    @property
    def rounds_seen(self) -> int:
        """Rounds the session's pricer has priced (propose calls)."""
        return self.pricer.rounds_seen


@dataclass
class RegistryStats:
    """Lifecycle counters of one registry (reported by the serving bench).

    ``created`` counts sessions built *from scratch* and ``hydrations``
    sessions rebuilt from a snapshot — the two are disjoint (a hydrated
    session is not double-counted as a creation), so
    ``created + hydrations`` (:attr:`opened`) is the number of times a
    session entered residency for the first time since its last eviction.
    """

    created: int = 0
    hydrations: int = 0
    evictions: int = 0
    persists: int = 0
    #: Sessions handed off to another shard (persist + drop, no eviction):
    #: the online rebalancer's exit path.  Disjoint from ``evictions``.
    exports: int = 0

    @property
    def opened(self) -> int:
        """Sessions that entered residency (fresh creations + hydrations)."""
        return self.created + self.hydrations

    def as_dict(self) -> dict:
        return {
            "created": self.created,
            "hydrations": self.hydrations,
            "opened": self.opened,
            "evictions": self.evictions,
            "persists": self.persists,
            "exports": self.exports,
        }


class PricerRegistry:
    """Session store keyed by :class:`SessionKey` with LRU residency.

    Parameters
    ----------
    factory:
        Builds ``(model, pricer)`` for a key.  The pricer must be freshly
        constructed with the session's configuration — hydration loads only
        the mutable state into it (the checkpoint contract).
    snapshot_dir:
        Directory of session snapshot files.  ``None`` disables persistence:
        evicted sessions lose their state and hydration never happens.
    max_sessions:
        Resident-session capacity; ``None`` means unbounded.
    persist_every:
        Write-behind cadence in feedback updates; ``0`` persists only on
        eviction / flush.
    """

    def __init__(
        self,
        factory: SessionFactory,
        snapshot_dir: Optional[str] = None,
        max_sessions: Optional[int] = None,
        persist_every: int = 0,
    ) -> None:
        if max_sessions is not None and max_sessions < 1:
            raise ValueError("max_sessions must be at least 1, got %d" % max_sessions)
        if persist_every < 0:
            raise ValueError("persist_every must be non-negative, got %d" % persist_every)
        self._factory = factory
        self._snapshot_dir = snapshot_dir
        self._max_sessions = max_sessions
        self._persist_every = persist_every
        self._sessions: "OrderedDict[SessionKey, PricingSession]" = OrderedDict()
        self.stats = RegistryStats()

    # ------------------------------------------------------------------ #
    # Lookup / residency
    # ------------------------------------------------------------------ #

    def session(self, key: SessionKey) -> PricingSession:
        """The resident session for ``key``, creating or hydrating it.

        Every access marks the session most-recently-used; creating a new
        session may LRU-evict a cold one past ``max_sessions``.
        """
        existing = self._sessions.get(key)
        if existing is not None:
            self._sessions.move_to_end(key)
            return existing
        model, pricer = self._factory(key)
        session = PricingSession(key=key, model=model, pricer=pricer)
        path = self.snapshot_path(key)
        if path is not None and os.path.exists(path):
            checkpoint = checkpoint_store.load_checkpoint(path)
            checkpoint_store.restore_pricer(pricer, checkpoint)
            session.hydrated = True
            self.stats.hydrations += 1
        else:
            self.stats.created += 1
        self._sessions[key] = session
        self._enforce_capacity(protect=key)
        return session

    def peek(self, key: SessionKey) -> Optional[PricingSession]:
        """The resident session for ``key`` without touching LRU order."""
        return self._sessions.get(key)

    @property
    def resident_count(self) -> int:
        """Number of sessions currently resident."""
        return len(self._sessions)

    @property
    def resident_keys(self) -> List[SessionKey]:
        """Resident keys in LRU → MRU order."""
        return list(self._sessions)

    def __contains__(self, key: SessionKey) -> bool:
        return key in self._sessions

    def pin(self, key: SessionKey) -> None:
        """Exempt a resident session from eviction until :meth:`unpin`."""
        session = self._sessions.get(key)
        if session is None:
            raise ServingError("cannot pin session %s: not resident" % (key,))
        session.pinned = True

    def unpin(self, key: SessionKey) -> None:
        """Lift a session's eviction exemption (no-op when not resident)."""
        session = self._sessions.get(key)
        if session is not None:
            session.pinned = False

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def snapshot_path(self, key: SessionKey) -> Optional[str]:
        """The snapshot file for ``key`` (``None`` when persistence is off)."""
        if self._snapshot_dir is None:
            return None
        return os.path.join(self._snapshot_dir, "%s.session.npz" % key.slug())

    def persist(self, session: PricingSession) -> bool:
        """Snapshot one session to disk; returns whether a file was written."""
        path = self.snapshot_path(session.key)
        if path is None:
            return False
        checkpoint_store.save_checkpoint(
            path,
            session.pricer,
            rounds_done=session.rounds_seen,
            meta={"app": session.key.app, "segment": session.key.segment},
        )
        session.updates_since_persist = 0
        self.stats.persists += 1
        return True

    def note_feedback(self, session: PricingSession, count: int = 1) -> None:
        """Record ``count`` applied feedback updates (write-behind cadence).

        A coalesced feedback window notes its whole group at once, so the
        cadence check runs — and at most one snapshot is written — per
        window, not per event.
        """
        session.feedback_seen += count
        session.updates_since_persist += count
        if 0 < self._persist_every <= session.updates_since_persist:
            self.persist(session)

    def flush(self) -> int:
        """Persist every resident session; returns the number written."""
        written = 0
        for session in self._sessions.values():
            if self.persist(session):
                written += 1
        return written

    def export_session(self, key: SessionKey) -> str:
        """Persist one quiesced session and drop it; returns its snapshot path.

        The shard-handoff exit of the online rebalancer: the session's state
        is written to its snapshot file (so the router can re-home the file)
        and residency is released *without* counting an eviction.  Requires
        persistence to be configured and the session to be fully settled —
        a pending decision cannot be rebuilt from a snapshot, so exporting
        one would strand its feedback.
        """
        session = self._sessions.get(key)
        if session is None:
            raise ServingError("cannot export session %s: not resident" % (key,))
        if session.pending:
            raise ServingError(
                "cannot export session %s with %d in-flight quote(s); quiesce "
                "it first" % (key, len(session.pending))
            )
        path = self.snapshot_path(key)
        if path is None:
            raise ServingError(
                "cannot export session %s without a snapshot_dir" % (key,)
            )
        self.persist(session)
        del self._sessions[key]
        self.stats.exports += 1
        return path

    def evict(self, key: SessionKey) -> bool:
        """Persist and drop one session; returns whether it was resident.

        Refuses to evict a session with in-flight quotes (pending decisions
        awaiting feedback) — a decision object cannot be rebuilt from a
        snapshot, so evicting would make its feedback unapplicable.  Settle
        or discard the pending quotes first.
        """
        session = self._sessions.get(key)
        if session is None:
            return False
        if session.pending:
            raise ServingError(
                "cannot evict session %s with %d in-flight quote(s); settle "
                "their feedback first" % (key, len(session.pending))
            )
        if session.pinned:
            raise ServingError(
                "cannot evict pinned session %s; unpin it first" % (key,)
            )
        # Persist before dropping: if the snapshot write fails, the session
        # stays resident and the eviction can be retried.
        self.persist(session)
        del self._sessions[key]
        self.stats.evictions += 1
        return True

    def _enforce_capacity(self, protect: SessionKey) -> None:
        """LRU-evict cold sessions past ``max_sessions``.

        ``protect`` (the just-created session), pinned sessions, and sessions
        with in-flight quotes are never evicted; if every candidate is
        exempt the registry temporarily exceeds capacity rather than losing
        decisions.
        """
        if self._max_sessions is None:
            return
        while len(self._sessions) > self._max_sessions:
            victim = None
            for key, session in self._sessions.items():
                if key != protect and not session.pending and not session.pinned:
                    victim = key
                    break
            if victim is None:
                return
            self.evict(victim)
