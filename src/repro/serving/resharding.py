"""Snapshot migration between shard counts.

The key→shard map of :class:`~repro.serving.sharding.ShardedRegistry` is a
pure function of the session key *and the shard count*
(:func:`~repro.serving.sharding.shard_of_key`), so changing the worker
count invalidates every per-shard snapshot directory: a session persisted
under ``shard-01`` of a 2-shard service may hash to ``shard-02`` of a
3-shard one, and a restarted service would silently re-create it from
scratch instead of hydrating its state.

This module is the offline migration tool that closes that gap.  A
*reshard* walks the source layout (``<dir>/shard-00``, ``shard-01``, ...),
recovers every session's identity from its checkpoint metadata (the
``app``/``segment`` the registry stamps on each snapshot), and rewrites the
tree under the **target** shard count — copying each ``.session.npz``
byte-for-byte (the checkpoint format carries no shard information) into the
directory its key hashes to under M shards.  Because placement is the only
thing that changes, a service restarted on the migrated tree hydrates every
session **bit-identically**: the golden resharding tier
(``tests/serving/test_resharding.py``) replays half a horizon on N shards,
migrates, resumes on M shards, and pins the stitched transcript against the
offline engine for every golden pricer family.

Verification levels:

* **checkpoint-exact** (always, unless disabled): source and target
  checkpoints are reloaded and compared — pricer type, rounds done, and
  every state array bit-for-bit (``tobytes`` equality, so even NaN
  payloads must match);
* **hydration** (with a ``factory``): a fresh pricer is built for each
  migrated key, the target checkpoint is restored into it, and its
  re-extracted ``state_dict()`` must equal the source state exactly — the
  full restart path, not just the file copy.

``scripts/reshard.py`` wraps this as a CLI.
"""

from __future__ import annotations

import math
import os
import re
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.engine import checkpoint as checkpoint_store
from repro.exceptions import ReshardingError
from repro.serving.registry import SESSION_SUFFIX
from repro.serving.requests import SessionKey
from repro.serving.sharding import shard_of_key

__all__ = [
    "SESSION_SUFFIX",
    "SessionMove",
    "ReshardReport",
    "shard_dir",
    "discover_shard_dirs",
    "checkpoint_session_key",
    "plan_reshard",
    "reshard_snapshots",
    "verify_reshard",
    "state_equal",
]

_SHARD_DIR_RE = re.compile(r"^shard-(\d+)$")


@dataclass(frozen=True)
class SessionMove:
    """One session's migration: where it was, where its key hashes to now."""

    key: SessionKey
    source_shard: int
    target_shard: int
    source_path: str
    target_path: str

    @property
    def relocated(self) -> bool:
        """Whether the session changed shards (not just directories)."""
        return self.source_shard != self.target_shard


@dataclass
class ReshardReport:
    """The outcome of one migration (JSON-serialisable via :meth:`as_dict`)."""

    source_dir: str
    target_dir: str
    source_shards: int
    target_shards: int
    moves: List[SessionMove] = field(default_factory=list)
    verified: bool = False
    hydration_verified: bool = False

    @property
    def sessions(self) -> int:
        return len(self.moves)

    @property
    def relocated(self) -> int:
        """Sessions whose owning shard actually changed."""
        return sum(1 for move in self.moves if move.relocated)

    def target_histogram(self) -> Dict[int, int]:
        """Sessions per target shard (load-balance sanity check)."""
        histogram = {shard: 0 for shard in range(self.target_shards)}
        for move in self.moves:
            histogram[move.target_shard] += 1
        return histogram

    def as_dict(self) -> dict:
        return {
            "source_dir": self.source_dir,
            "target_dir": self.target_dir,
            "source_shards": self.source_shards,
            "target_shards": self.target_shards,
            "sessions": self.sessions,
            "relocated": self.relocated,
            "verified": self.verified,
            "hydration_verified": self.hydration_verified,
            "target_histogram": {
                str(shard): count for shard, count in self.target_histogram().items()
            },
            "moves": [
                {
                    "app": move.key.app,
                    "segment": move.key.segment,
                    "source_shard": move.source_shard,
                    "target_shard": move.target_shard,
                }
                for move in self.moves
            ],
        }


def shard_dir(root: str, shard: int) -> str:
    """The canonical per-shard snapshot directory path."""
    return os.path.join(root, "shard-%02d" % shard)


def discover_shard_dirs(snapshot_dir: str) -> Dict[int, str]:
    """Map shard index → directory for every ``shard-NN`` under ``snapshot_dir``."""
    if not os.path.isdir(snapshot_dir):
        raise ReshardingError("snapshot directory %r does not exist" % snapshot_dir)
    found: Dict[int, str] = {}
    for name in sorted(os.listdir(snapshot_dir)):
        match = _SHARD_DIR_RE.match(name)
        path = os.path.join(snapshot_dir, name)
        if match and os.path.isdir(path):
            index = int(match.group(1))
            if index in found:
                # "shard-1" next to "shard-01": silently shadowing one of
                # them would drop its sessions from the migration.
                raise ReshardingError(
                    "shard index %d appears twice (%s and %s)"
                    % (index, found[index], path)
                )
            found[index] = path
    if not found:
        raise ReshardingError(
            "no shard-NN directories under %r — not a sharded snapshot tree"
            % snapshot_dir
        )
    return found


def checkpoint_session_key(checkpoint) -> SessionKey:
    """Recover the session identity the registry stamped on a snapshot."""
    app = checkpoint.meta.get("app")
    segment = checkpoint.meta.get("segment")
    if app is None or segment is None:
        raise ReshardingError(
            "snapshot carries no session identity (meta app/segment missing); "
            "it was not written by a PricerRegistry"
        )
    return SessionKey(app=str(app), segment=str(segment))


def plan_reshard(
    source_dir: str,
    target_dir: str,
    target_shards: int,
    source_shards: Optional[int] = None,
) -> ReshardReport:
    """Read the source tree and compute every session's move (no writes).

    ``source_shards`` defaults to the highest shard directory index + 1;
    pass it explicitly when trailing shards never persisted a session.  The
    plan validates that every session actually sits on the shard its key
    hashes to under the source count — a mismatch means the declared count
    is wrong (or the tree is corrupt), and migrating under a wrong count
    would scatter sessions to shards that will never look for them.
    """
    if target_shards < 1:
        raise ReshardingError("target_shards must be at least 1, got %d" % target_shards)
    dirs = discover_shard_dirs(source_dir)
    # The offline resharder moves sessions as individual ``.session.npz``
    # files; a tree with live segment-resident sessions (the columnar
    # store's ``snapshot_format="segment"``) would silently lose them.
    from repro.serving.store import list_segment_sessions

    for directory in dirs.values():
        stranded = list_segment_sessions(directory)
        if stranded:
            raise ReshardingError(
                "%s holds %d segment-resident session(s); offline resharding "
                "operates on legacy files — run "
                "repro.serving.store.export_segments_to_legacy on each shard "
                "directory first, or migrate live with rebalance_live"
                % (directory, len(stranded))
            )
    inferred = max(dirs) + 1
    if source_shards is None:
        source_shards = inferred
    elif source_shards < inferred:
        raise ReshardingError(
            "declared source_shards=%d but found directory shard-%02d"
            % (source_shards, max(dirs))
        )
    report = ReshardReport(
        source_dir=source_dir,
        target_dir=target_dir,
        source_shards=source_shards,
        target_shards=target_shards,
    )
    seen: Dict[SessionKey, str] = {}
    for shard_index in sorted(dirs):
        directory = dirs[shard_index]
        for name in sorted(os.listdir(directory)):
            if not name.endswith(SESSION_SUFFIX):
                continue
            source_path = os.path.join(directory, name)
            checkpoint = checkpoint_store.load_checkpoint(source_path)
            key = checkpoint_session_key(checkpoint)
            expected = shard_of_key(key, source_shards)
            if expected != shard_index:
                raise ReshardingError(
                    "session %s found on shard %d but hashes to shard %d under "
                    "%d source shards — wrong declared shard count?"
                    % (key, shard_index, expected, source_shards)
                )
            if key in seen:
                raise ReshardingError(
                    "session %s appears twice (%s and %s)" % (key, seen[key], source_path)
                )
            seen[key] = source_path
            target = shard_of_key(key, target_shards)
            report.moves.append(
                SessionMove(
                    key=key,
                    source_shard=shard_index,
                    target_shard=target,
                    source_path=source_path,
                    target_path=os.path.join(shard_dir(target_dir, target), name),
                )
            )
    return report


def reshard_snapshots(
    source_dir: str,
    target_dir: str,
    target_shards: int,
    source_shards: Optional[int] = None,
    verify: bool = True,
    factory=None,
) -> ReshardReport:
    """Migrate a per-shard snapshot tree from N to M shards.

    Writes a complete target tree under ``target_dir`` (every
    ``shard-00 .. shard-(M-1)`` directory is created, so a restarted
    :class:`ShardedRegistry` finds its full layout) and copies each session
    snapshot — byte-for-byte, atomically — into the directory its key
    hashes to under ``target_shards``.  The whole tree is staged in a
    hidden sibling directory and promoted into place with a single rename
    once every copy succeeded, so a mid-copy failure (disk full, a
    corrupt source file) leaves **no half-written target tree** behind —
    the staging directory is removed on raise and ``target_dir`` is
    untouched.  The source tree is never modified either, so a failed or
    interrupted migration cannot strand the running layout.

    With ``verify=True`` every migrated checkpoint is reloaded and compared
    bit-exactly against its source; passing a ``factory`` (the same
    ``key -> (model, pricer)`` callable the registry uses) additionally
    exercises the full hydration path.  Returns the :class:`ReshardReport`.
    """
    source_real = os.path.realpath(source_dir)
    target_real = os.path.realpath(target_dir)
    if source_real == target_real:
        raise ReshardingError(
            "in-place migration is not supported: target must differ from source "
            "(migrate to a sibling directory, then point the service at it)"
        )
    if os.path.isdir(target_dir) and os.listdir(target_dir):
        # Stale files from an earlier (or differently-sharded) migration
        # would survive in a tree the verification pass then blesses — and
        # a restarted registry could hydrate a session that no longer
        # exists in the source.
        raise ReshardingError(
            "target directory %r is not empty; refusing to mix migrations "
            "(remove it or pick a fresh directory)" % target_dir
        )
    report = plan_reshard(
        source_dir, target_dir, target_shards, source_shards=source_shards
    )
    parent = os.path.dirname(os.path.abspath(target_dir)) or "."
    os.makedirs(parent, exist_ok=True)
    staging = tempfile.mkdtemp(prefix=".reshard-staging-", dir=parent)
    try:
        for shard in range(target_shards):
            os.makedirs(shard_dir(staging, shard), exist_ok=True)
        for move in report.moves:
            staged_path = os.path.join(
                staging, os.path.relpath(move.target_path, target_dir)
            )
            with open(move.source_path, "rb") as handle:
                _atomic_write(staged_path, handle.read())
        if os.path.isdir(target_dir):
            # Verified empty above; rename() needs the slot free.
            os.rmdir(target_dir)
        os.rename(staging, target_dir)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    if verify:
        verify_reshard(report, factory=factory)
    return report


def verify_reshard(report: ReshardReport, factory=None) -> ReshardReport:
    """Prove the migrated tree equals the source, session by session.

    Checkpoint-exact always; with ``factory``, each migrated session is
    additionally *hydrated* — a fresh pricer restored from the target file
    must re-extract a ``state_dict()`` bit-identical to the source state,
    and the re-extracted state must survive a save/load round trip (the
    exact path a later re-persist of the hydrated session takes).  The
    round trip runs in a scratch directory that is removed on success and
    on every exception path, so verification never leaves temporary
    hydration state behind in (or next to) the migrated tree.  Raises
    :class:`ReshardingError` on the first divergence.
    """
    for move in report.moves:
        source = checkpoint_store.load_checkpoint(move.source_path)
        target = checkpoint_store.load_checkpoint(move.target_path)
        if source.pricer_type != target.pricer_type:
            raise ReshardingError(
                "migrated session %s changed pricer type (%r -> %r)"
                % (move.key, source.pricer_type, target.pricer_type)
            )
        if source.rounds_done != target.rounds_done:
            raise ReshardingError(
                "migrated session %s changed rounds_done (%d -> %d)"
                % (move.key, source.rounds_done, target.rounds_done)
            )
        if not state_equal(source.state, target.state):
            raise ReshardingError(
                "migrated session %s diverged from its source checkpoint" % (move.key,)
            )
        if factory is not None:
            _verify_hydration(move, source, target, factory)
    report.verified = True
    report.hydration_verified = factory is not None
    return report


def _verify_hydration(move: SessionMove, source, target, factory) -> None:
    """Hydrate one migrated session and round-trip its re-extracted state.

    All temporary state (the scratch checkpoint of the hydrated pricer)
    lives in a private directory that is removed in a ``finally`` — success
    and every exception path (a divergence, a factory error, a corrupt
    checkpoint) leave nothing behind.
    """
    _model, pricer = factory(move.key)
    checkpoint_store.restore_pricer(pricer, target)
    scratch = tempfile.mkdtemp(prefix=".reshard-verify-")
    try:
        if not state_equal(pricer.state_dict(), source.state):
            raise ReshardingError(
                "session %s hydrated from the migrated snapshot does not "
                "reproduce the source state exactly" % (move.key,)
            )
        scratch_path = os.path.join(scratch, "hydrated" + SESSION_SUFFIX)
        checkpoint_store.save_checkpoint(
            scratch_path,
            pricer,
            rounds_done=target.rounds_done,
            meta=dict(target.meta),
        )
        reread = checkpoint_store.load_checkpoint(scratch_path)
        if not state_equal(reread.state, source.state):
            raise ReshardingError(
                "session %s does not survive a hydrate → re-persist round "
                "trip bit-identically" % (move.key,)
            )
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def state_equal(left, right) -> bool:
    """Recursive bit-exact equality of two ``state_dict`` mappings.

    Arrays compare by dtype, shape, and raw bytes (so NaN payloads and
    signed zeros must match too); float scalars treat NaN == NaN (JSON
    round-trips them, and a NaN bookkeeping scalar is still the same
    state); containers compare structurally.
    """
    if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
        if not (isinstance(left, np.ndarray) and isinstance(right, np.ndarray)):
            return False
        return (
            left.dtype == right.dtype
            and left.shape == right.shape
            and left.tobytes() == right.tobytes()
        )
    if isinstance(left, dict) and isinstance(right, dict):
        if left.keys() != right.keys():
            return False
        return all(state_equal(left[key], right[key]) for key in left)
    if isinstance(left, (list, tuple)) and isinstance(right, (list, tuple)):
        if len(left) != len(right):
            return False
        return all(state_equal(a, b) for a, b in zip(left, right))
    if isinstance(left, float) and isinstance(right, float):
        if math.isnan(left) and math.isnan(right):
            return True
        return left == right
    return type(left) is type(right) and left == right


def _atomic_write(path: str, data: bytes) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    descriptor, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(data)
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
