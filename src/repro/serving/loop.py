"""Closed-loop serving driver and its transcript-equivalence contract.

:func:`serve_closed_loop` replays a materialised market through a
:class:`~repro.serving.service.QuoteService` exactly the way the offline
engine's sequential loop replays it: one quote per round, the sale decided
against the realised market value with the same scalar comparison
(``posted <= market_value``), and the accept/reject feedback applied *before*
the next round's quote.  The resulting transcript is **bit-identical** to
:func:`repro.engine.simulate` over the same materialisation — pinned by
``tests/serving/test_serving_equivalence.py`` for every golden pricer family.

Why this holds:

* the per-round quantities come from the shared materialisation via
  :func:`repro.engine.stream_rounds` — computed once, identical floats;
* the service's drain calls ``propose``/``propose_batch`` with the same
  arguments (feature row, ``None``-resolved reserve) and translates the link
  price through the same scalar ``model.link`` call as the engine loop;
* per-round stepping means every ``update`` sees the same decision/outcome
  sequence as the offline run — the micro-batch window never coalesces two
  rounds of one session because round t+1 is not submitted until round t's
  feedback settled.

This is the serving extension of the engine's exactness contract (see
``docs/architecture.md``): an online session hydrated from a checkpoint and
driven to round T produces the identical transcript an offline sweep would.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.arrivals import MaterializedArrivals
from repro.engine.results import SimulationResult
from repro.engine.streaming import stream_rounds
from repro.engine.transcript import Transcript
from repro.serving.requests import FeedbackEvent, QuoteRequest, SessionKey
from repro.serving.service import QuoteService


def serve_closed_loop(
    service: QuoteService,
    key: SessionKey,
    materialized: MaterializedArrivals,
    pricer_name: Optional[str] = None,
) -> SimulationResult:
    """Drive one session through a materialised market, round by round.

    Each round submits one quote for ``key``, decides the sale against the
    round's realised market value, feeds the outcome back, and records the
    engine-format transcript row.  The session is resolved (created or
    hydrated) by the service's registry on the first quote; its pricer may
    already carry state from a snapshot — the transcript then continues that
    session exactly where the snapshot left off.
    """
    transcript = Transcript.for_materialized(materialized)
    for round_ in stream_rounds(materialized):
        index = round_.index
        response = service.quote(
            QuoteRequest(key=key, features=round_.features, reserve=round_.reserve)
        )
        sold = response.sold_at(round_.market_value)
        if response.posted:
            transcript.link_prices[index] = response.link_price
            transcript.posted_prices[index] = response.posted_price
            transcript.sold[index] = sold
        service.feedback(FeedbackEvent(key=key, quote_id=response.quote_id, accepted=sold))
        transcript.skipped[index] = response.skipped
        transcript.exploratory[index] = response.exploratory
    transcript.finalize_regrets()
    session = service.registry.peek(key)
    if pricer_name is None:
        pricer = session.pricer if session is not None else None
        pricer_name = getattr(pricer, "name", type(pricer).__name__ if pricer else str(key))
    return SimulationResult(pricer_name=pricer_name, transcript=transcript)
