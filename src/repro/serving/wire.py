"""Wire protocol of the quote-serving socket layer: framing + codecs.

Every frame on a serving connection is a 4-byte big-endian unsigned length
followed by that many bytes of body.  Two body encodings share the stream:

* **v1 (JSON, the default)** — the body is UTF-8 JSON.  Python's ``json``
  emits shortest round-trip ``repr`` floats, so prices and features survive
  the wire bit-exactly; that exactness is load-bearing for the serving
  equivalence contract (a closed-loop replay through the socket is
  bit-identical to the offline engine).
* **v2 (binary, batched)** — the body starts with a fixed ``struct`` header
  ``(magic, version, opcode, count)`` and carries a **columnar payload** for
  a whole batch of quotes / results / feedback events: a key string table,
  packed ``int64`` id arrays, ``float64`` price and feature arrays
  (``tobytes``-exact — raw IEEE doubles, so the bit-exactness contract holds
  trivially), and one flags byte per item for optional fields.  One frame
  moves a whole micro-batch window across the socket instead of one frame
  per quote.

The first body byte disambiguates: a v2 body starts with NUL (``\\x00``),
which can never begin a JSON text, so v1 and v2 frames interleave freely on
one connection.  Only the four hot operations have v2 encodings
(``quote_batch``, ``quote_result_batch``, ``feedback_batch``,
``feedback_ok_batch``); housekeeping ops (``hello``, ``ping``, ``stats``,
``flush``) and ``error`` frames stay JSON even on a v2 connection — they are
rare and debuggability wins.

**Negotiation.**  A connection starts in v1.  A client that wants the
binary path sends ``{"op": "hello", "wire": 2}``; a v2-aware server replies
``{"op": "hello_ok", "wire": 2}`` and from then on both sides may send v2
frames (the server batches its responses per drain into single v2 frames).
An old server answers ``hello`` with an ``error`` frame — the client simply
stays on v1, so new clients keep working against old servers and vice
versa.

Decoded v2 frames surface as plain dicts (``{"op": "quote_batch",
"items": [...]}``) whose items are shaped exactly like the corresponding v1
payloads, so the dispatch and settle code paths are shared between the two
protocol versions.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ServingError

#: Frame header: one 4-byte big-endian unsigned length.
FRAME_HEADER = struct.Struct(">I")

#: Upper bound on a single frame (defensive: a corrupt header must not OOM).
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Protocol versions a connection can speak.
WIRE_V1 = 1
WIRE_V2 = 2

#: First bytes of every v2 body.  The leading NUL can never start a JSON
#: text, so the two encodings are self-describing on a shared stream.
V2_MAGIC = b"\x00RPW"

#: v2 body header: magic, version byte, opcode byte, reserved, item count.
V2_HEADER = struct.Struct(">4sBBHI")

OP_QUOTE_BATCH = 1
OP_QUOTE_RESULT_BATCH = 2
OP_FEEDBACK_BATCH = 3
OP_FEEDBACK_OK_BATCH = 4

#: Flags byte of one v2 item (meaning depends on the opcode).
_HAS_TAG = 1 << 0
_HAS_RESERVE = 1 << 1  # quote_batch
_EXPLORATORY = 1 << 1  # quote_result_batch
_SKIPPED = 1 << 2
_HAS_LINK = 1 << 3
_HAS_POSTED = 1 << 4
_ACCEPTED = 1 << 1  # feedback_batch

_U16 = struct.Struct(">H")


# --------------------------------------------------------------------------- #
# Framing (shared by both protocol versions)
# --------------------------------------------------------------------------- #


def decode_frame_body(body: bytes) -> dict:
    """Decode one frame body, auto-detecting the protocol version."""
    if body[:1] == b"\x00":
        return decode_v2_body(body)
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ServingError("undecodable frame body: %s" % exc)


def frame_version(body: bytes) -> int:
    """The protocol version of one frame body (for the wire counters)."""
    return WIRE_V2 if body[:1] == b"\x00" else WIRE_V1


def encode_frame(payload: dict) -> bytes:
    """One length-prefixed JSON (v1) frame."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ServingError("frame of %d bytes exceeds the %d-byte bound"
                           % (len(body), MAX_FRAME_BYTES))
    return FRAME_HEADER.pack(len(body)) + body


def encode_frames(payloads: Sequence[dict]) -> bytes:
    """Many v1 frames as **one** contiguous buffer.

    The batched write path: one tick's responses hit the transport as a
    single ``write`` instead of one header+body copy per frame.
    """
    return b"".join(encode_frame(payload) for payload in payloads)


def _framed(body: bytes) -> bytes:
    if len(body) > MAX_FRAME_BYTES:
        raise ServingError("frame of %d bytes exceeds the %d-byte bound"
                           % (len(body), MAX_FRAME_BYTES))
    return FRAME_HEADER.pack(len(body)) + body


class FrameDecoder:
    """Incremental (sans-IO) decoder of the length-prefixed framing.

    Feed it byte chunks as they arrive — at *any* split points, including
    mid-header and mid-body — and it yields the completed frames in order
    (v1 JSON and v2 binary bodies interleaved freely).  A truncated frame
    simply stays buffered until the remaining bytes arrive; an oversized
    length header or an undecodable body raises :class:`ServingError`
    (after which the stream is no longer at a frame boundary and the
    connection must be dropped).  Shared by the server and both clients,
    and pinned by the hypothesis round-trip tiers
    (``tests/serving/test_wire_protocol.py``, ``test_wire_v2.py``).

    ``on_frame``, when given, is called with ``(version, nbytes)`` for every
    decoded frame (``nbytes`` includes the 4-byte length prefix) — the hook
    the frontend's wire counters use.
    """

    def __init__(
        self,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        on_frame: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        self._buffer = bytearray()
        self._max_frame_bytes = max_frame_bytes
        self._on_frame = on_frame

    @property
    def buffered(self) -> int:
        """Bytes of the (possibly incomplete) next frame held back."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[dict]:
        """Consume a chunk; return every frame it completed (maybe none)."""
        self._buffer.extend(data)
        frames: List[dict] = []
        while len(self._buffer) >= FRAME_HEADER.size:
            (length,) = FRAME_HEADER.unpack_from(self._buffer)
            if length > self._max_frame_bytes:
                raise ServingError("frame length %d exceeds the %d-byte bound"
                                   % (length, self._max_frame_bytes))
            end = FRAME_HEADER.size + length
            if len(self._buffer) < end:
                break
            body = bytes(self._buffer[FRAME_HEADER.size:end])
            del self._buffer[:end]
            frames.append(decode_frame_body(body))
            if self._on_frame is not None:
                self._on_frame(frame_version(body), end)
        return frames


async def read_frame(reader: asyncio.StreamReader) -> Optional[dict]:
    """Read one frame (either version); ``None`` on EOF or a dead connection.

    ``OSError`` covers more than a reset: a *write* to a disconnected peer
    poisons the stream reader with the same ``BrokenPipeError`` (asyncio
    delivers one ``connection_lost`` exception to both directions), and a
    reader that re-raised it would crash the connection handler instead of
    letting it clean up — treat every transport-level failure as EOF.
    """
    try:
        header = await reader.readexactly(FRAME_HEADER.size)
    except (asyncio.IncompleteReadError, OSError):
        return None
    (length,) = FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ServingError("frame length %d exceeds the %d-byte bound"
                           % (length, MAX_FRAME_BYTES))
    try:
        body = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, OSError):
        return None
    return decode_frame_body(body)


# --------------------------------------------------------------------------- #
# v2 encode: columnar batch bodies
# --------------------------------------------------------------------------- #


def _key_table(payloads: Sequence[dict]) -> Tuple[bytes, np.ndarray]:
    """Unique ``(app, segment)`` pairs as a string table + per-item index."""
    table: dict = {}
    indices = np.empty(len(payloads), dtype=">u2")
    for position, payload in enumerate(payloads):
        pair = (str(payload["app"]), str(payload["segment"]))
        index = table.get(pair)
        if index is None:
            index = len(table)
            if index > 0xFFFF:
                raise ServingError("v2 frame exceeds 65536 distinct session keys")
            table[pair] = index
        indices[position] = index
    parts = [_U16.pack(len(table))]
    for app, segment in table:
        for text in (app, segment):
            raw = text.encode("utf-8")
            if len(raw) > 0xFFFF:
                raise ServingError("session key component exceeds 65535 bytes")
            parts.append(_U16.pack(len(raw)))
            parts.append(raw)
    return b"".join(parts), indices


def _tag_column(payloads: Sequence[dict], flags: np.ndarray) -> np.ndarray:
    """Per-item request tag (``id``) as int64; absence recorded in flags."""
    tags = np.zeros(len(payloads), dtype=">i8")
    for position, payload in enumerate(payloads):
        tag = payload.get("id")
        if tag is not None:
            flags[position] |= _HAS_TAG
            tags[position] = int(tag)
    return tags


def encode_quote_batch(payloads: Sequence[dict]) -> bytes:
    """A batch of v1-shaped ``quote`` payloads as one v2 frame.

    Features land as raw IEEE float64 (``tobytes``), concatenated flat with
    a per-item length column — sessions with different feature dimensions
    batch together.
    """
    count = len(payloads)
    flags = np.zeros(count, dtype=np.uint8)
    tags = _tag_column(payloads, flags)
    keys, key_index = _key_table(payloads)
    reserves = np.zeros(count, dtype=">f8")
    lengths = np.empty(count, dtype=">u4")
    rows: List[np.ndarray] = []
    for position, payload in enumerate(payloads):
        try:
            features = np.atleast_1d(
                np.asarray(payload["features"], dtype=np.float64)
            ).ravel()
        except (KeyError, TypeError, ValueError) as exc:
            raise ServingError("malformed quote payload: %s" % exc)
        lengths[position] = features.size
        rows.append(features)
        reserve = payload.get("reserve")
        if reserve is not None:
            flags[position] |= _HAS_RESERVE
            reserves[position] = float(reserve)
    flat = np.concatenate(rows) if rows else np.empty(0, dtype=np.float64)
    body = b"".join(
        (
            V2_HEADER.pack(V2_MAGIC, WIRE_V2, OP_QUOTE_BATCH, 0, count),
            keys,
            key_index.tobytes(),
            flags.tobytes(),
            tags.tobytes(),
            reserves.tobytes(),
            lengths.tobytes(),
            flat.astype(">f8").tobytes(),
        )
    )
    return _framed(body)


def encode_quote_result_batch(payloads: Sequence[dict]) -> bytes:
    """A batch of v1-shaped ``quote_result`` payloads as one v2 frame."""
    count = len(payloads)
    flags = np.zeros(count, dtype=np.uint8)
    tags = _tag_column(payloads, flags)
    keys, key_index = _key_table(payloads)
    quote_ids = np.empty(count, dtype=">i8")
    link = np.zeros(count, dtype=">f8")
    posted = np.zeros(count, dtype=">f8")
    rounds = np.empty(count, dtype=">i8")
    latency = np.empty(count, dtype=">f8")
    for position, payload in enumerate(payloads):
        quote_ids[position] = int(payload["quote_id"])
        rounds[position] = int(payload["round_index"])
        latency[position] = float(payload["latency_seconds"])
        if payload.get("exploratory"):
            flags[position] |= _EXPLORATORY
        if payload.get("skipped"):
            flags[position] |= _SKIPPED
        if payload.get("link_price") is not None:
            flags[position] |= _HAS_LINK
            link[position] = float(payload["link_price"])
        if payload.get("posted_price") is not None:
            flags[position] |= _HAS_POSTED
            posted[position] = float(payload["posted_price"])
    body = b"".join(
        (
            V2_HEADER.pack(V2_MAGIC, WIRE_V2, OP_QUOTE_RESULT_BATCH, 0, count),
            keys,
            key_index.tobytes(),
            flags.tobytes(),
            tags.tobytes(),
            quote_ids.tobytes(),
            link.tobytes(),
            posted.tobytes(),
            rounds.tobytes(),
            latency.tobytes(),
        )
    )
    return _framed(body)


def encode_feedback_batch(payloads: Sequence[dict]) -> bytes:
    """A batch of v1-shaped ``feedback`` payloads as one v2 frame."""
    count = len(payloads)
    flags = np.zeros(count, dtype=np.uint8)
    tags = _tag_column(payloads, flags)
    keys, key_index = _key_table(payloads)
    quote_ids = np.empty(count, dtype=">i8")
    for position, payload in enumerate(payloads):
        quote_ids[position] = int(payload["quote_id"])
        if payload.get("accepted"):
            flags[position] |= _ACCEPTED
    body = b"".join(
        (
            V2_HEADER.pack(V2_MAGIC, WIRE_V2, OP_FEEDBACK_BATCH, 0, count),
            keys,
            key_index.tobytes(),
            flags.tobytes(),
            tags.tobytes(),
            quote_ids.tobytes(),
        )
    )
    return _framed(body)


def encode_feedback_ok_batch(tags: Sequence[int]) -> bytes:
    """A batch of ``feedback_ok`` acknowledgements (tags only)."""
    column = np.asarray([int(tag) for tag in tags], dtype=">i8")
    body = V2_HEADER.pack(
        V2_MAGIC, WIRE_V2, OP_FEEDBACK_OK_BATCH, 0, len(column)
    ) + column.tobytes()
    return _framed(body)


# --------------------------------------------------------------------------- #
# v2 decode
# --------------------------------------------------------------------------- #


class _Cursor:
    """Bounds-checked reader over one v2 body."""

    def __init__(self, body: bytes) -> None:
        self.body = body
        self.offset = 0

    def take(self, size: int) -> bytes:
        end = self.offset + size
        if size < 0 or end > len(self.body):
            raise ServingError(
                "truncated v2 frame: wanted %d bytes at offset %d of %d"
                % (size, self.offset, len(self.body))
            )
        chunk = self.body[self.offset:end]
        self.offset = end
        return chunk

    def array(self, dtype: str, count: int) -> np.ndarray:
        itemsize = np.dtype(dtype).itemsize
        return np.frombuffer(self.take(itemsize * count), dtype=dtype)

    def u16(self) -> int:
        return _U16.unpack(self.take(2))[0]

    def text(self) -> str:
        raw = self.take(self.u16())
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ServingError("undecodable v2 string: %s" % exc)

    def done(self) -> None:
        if self.offset != len(self.body):
            raise ServingError(
                "v2 frame has %d trailing bytes" % (len(self.body) - self.offset)
            )


def _read_keys(cursor: _Cursor, count: int) -> Tuple[List[Tuple[str, str]], np.ndarray]:
    table = [(cursor.text(), cursor.text()) for _ in range(cursor.u16())]
    key_index = cursor.array(">u2", count)
    if len(table) and key_index.size and int(key_index.max()) >= len(table):
        raise ServingError("v2 key index out of range")
    if key_index.size and not len(table):
        raise ServingError("v2 frame has items but an empty key table")
    return table, key_index


def decode_v2_body(body: bytes) -> dict:
    """One v2 binary body → an op dict with v1-shaped ``items``.

    Raises :class:`ServingError` on a bad magic, an unknown version or
    opcode, truncation, or trailing garbage — the stream is then no longer
    trustworthy and the connection must be dropped (same contract as an
    undecodable JSON body).
    """
    if len(body) < V2_HEADER.size:
        raise ServingError("v2 frame shorter than its header")
    magic, version, opcode, _reserved, count = V2_HEADER.unpack_from(body)
    if magic != V2_MAGIC:
        raise ServingError("bad v2 magic %r" % magic)
    if version != WIRE_V2:
        raise ServingError("unsupported wire version %d" % version)
    cursor = _Cursor(body)
    cursor.offset = V2_HEADER.size
    if opcode == OP_QUOTE_BATCH:
        result = _decode_quote_batch(cursor, count)
    elif opcode == OP_QUOTE_RESULT_BATCH:
        result = _decode_quote_result_batch(cursor, count)
    elif opcode == OP_FEEDBACK_BATCH:
        result = _decode_feedback_batch(cursor, count)
    elif opcode == OP_FEEDBACK_OK_BATCH:
        tags = cursor.array(">i8", count)
        result = {
            "op": "feedback_ok_batch",
            "items": [{"op": "feedback_ok", "id": int(tag)} for tag in tags],
        }
    else:
        raise ServingError("unknown v2 opcode %d" % opcode)
    cursor.done()
    return result


def _decode_quote_batch(cursor: _Cursor, count: int) -> dict:
    table, key_index = _read_keys(cursor, count)
    flags = cursor.array("u1", count)
    tags = cursor.array(">i8", count)
    reserves = cursor.array(">f8", count)
    lengths = cursor.array(">u4", count)
    flat = cursor.array(">f8", int(lengths.sum())).astype("=f8")
    items: List[dict] = []
    offset = 0
    for position in range(count):
        app, segment = table[key_index[position]]
        size = int(lengths[position])
        item = {
            "op": "quote",
            "app": app,
            "segment": segment,
            "features": flat[offset:offset + size],
            "reserve": float(reserves[position])
            if flags[position] & _HAS_RESERVE
            else None,
        }
        if flags[position] & _HAS_TAG:
            item["id"] = int(tags[position])
        offset += size
        items.append(item)
    return {"op": "quote_batch", "items": items}


def _decode_quote_result_batch(cursor: _Cursor, count: int) -> dict:
    table, key_index = _read_keys(cursor, count)
    flags = cursor.array("u1", count)
    tags = cursor.array(">i8", count)
    quote_ids = cursor.array(">i8", count)
    link = cursor.array(">f8", count)
    posted = cursor.array(">f8", count)
    rounds = cursor.array(">i8", count)
    latency = cursor.array(">f8", count)
    items = []
    for position in range(count):
        app, segment = table[key_index[position]]
        item = {
            "op": "quote_result",
            "quote_id": int(quote_ids[position]),
            "app": app,
            "segment": segment,
            "link_price": float(link[position])
            if flags[position] & _HAS_LINK
            else None,
            "posted_price": float(posted[position])
            if flags[position] & _HAS_POSTED
            else None,
            "exploratory": bool(flags[position] & _EXPLORATORY),
            "skipped": bool(flags[position] & _SKIPPED),
            "round_index": int(rounds[position]),
            "latency_seconds": float(latency[position]),
        }
        if flags[position] & _HAS_TAG:
            item["id"] = int(tags[position])
        items.append(item)
    return {"op": "quote_result_batch", "items": items}


def _decode_feedback_batch(cursor: _Cursor, count: int) -> dict:
    table, key_index = _read_keys(cursor, count)
    flags = cursor.array("u1", count)
    tags = cursor.array(">i8", count)
    quote_ids = cursor.array(">i8", count)
    items = []
    for position in range(count):
        app, segment = table[key_index[position]]
        item = {
            "op": "feedback",
            "app": app,
            "segment": segment,
            "quote_id": int(quote_ids[position]),
            "accepted": bool(flags[position] & _ACCEPTED),
        }
        if flags[position] & _HAS_TAG:
            item["id"] = int(tags[position])
        items.append(item)
    return {"op": "feedback_batch", "items": items}
