"""Online N→M resharding: migrate live shards without stopping the service.

:mod:`repro.serving.resharding` moves snapshot trees **offline** — the
service is stopped, the tree is rewritten, the service restarts on the new
layout.  This module closes the remaining gap: :class:`LiveRebalancer`
re-homes sessions **under traffic**, one at a time, through
:meth:`~repro.serving.sharding.ShardedRegistry.rehome_session`'s
per-session quiesce (park new admissions, drain, export the checkpoint,
copy it byte-exactly, re-attach on the target, replay the parked quotes) —
every session *not* currently moving keeps serving throughout, and the
whole migration is verifiable by the same bit-exactness contract as the
offline path.

The migration protocol for scaling N → M shards:

1. **scale out** — spawn workers until ``max(N, M)`` are live; the hash
   placement still uses the old divisor, so new sessions keep landing on
   the old layout (no split-brain while moving);
2. **sweep** — plan every session (resident *and* cold snapshot files)
   whose current shard differs from its hash placement under ``M``, and
   re-home each; re-plan and repeat until a sweep finds nothing, which
   also catches sessions created mid-migration on the old placement;
3. **commit** — collapse the per-key routing overrides into the new hash
   divisor (:meth:`~repro.serving.sharding.ShardedRegistry.commit_routing`
   validates every override equals its hash placement, so nothing can be
   stranded);
4. **scale in** — when M < N, retire the now-empty trailing workers (each
   removal re-checks the shard really holds nothing).

Admissions of *brand-new* session keys race the sweeps by nature: a key
first seen mid-migration lands on the old placement and is caught by the
next sweep.  The residual window — a key admitted *between* the final empty
sweep and the commit — is closed by taking the router's admission lock
(:meth:`~repro.serving.sharding.ShardedRegistry.routing_freeze`) around the
final plan + commit: while the rebalancer verifies the plan is empty and
collapses the routing table, no new session can be admitted, so nothing can
slip onto the old placement unmoved.  Admissions block for the duration of
one planning pass (no quotes are lost — they queue on the lock).

``scripts/rebalance.py`` wraps this as a CLI and
``tests/serving/test_rebalance.py`` pins the bit-exactness bar: all golden
families replayed through a live 2→3 migration under socket traffic equal
the offline engine exactly, with zero lost quote ids.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.engine import checkpoint as checkpoint_store
from repro.exceptions import RebalanceError, ReshardingError
from repro.serving.requests import SessionKey
from repro.serving.resharding import (
    SESSION_SUFFIX,
    checkpoint_session_key,
    discover_shard_dirs,
)
from repro.serving.sharding import MAX_SHARDS, ShardedRegistry, shard_of_key
from repro.serving.store import list_segment_sessions

__all__ = [
    "SessionRebalance",
    "RebalanceReport",
    "LiveRebalancer",
    "rebalance_live",
]

#: A sweep that keeps finding work this many times is livelocked (sessions
#: are being created on the old placement faster than they can be moved).
MAX_SWEEPS = 32


@dataclass(frozen=True)
class SessionRebalance:
    """One session's completed live move."""

    key: SessionKey
    source: int
    target: int
    #: Whether the session was resident (hot) on the source when moved.
    resident: bool
    #: Whether the target worker re-hydrated it from the moved snapshot.
    hydrated: bool
    #: Whether a snapshot file crossed shard directories.
    file_moved: bool
    #: Admissions parked during the move and replayed on the target.
    parked_replayed: int
    quiesce_seconds: float

    def as_dict(self) -> dict:
        return {
            "app": self.key.app,
            "segment": self.key.segment,
            "source": self.source,
            "target": self.target,
            "resident": self.resident,
            "hydrated": self.hydrated,
            "file_moved": self.file_moved,
            "parked_replayed": self.parked_replayed,
            "quiesce_seconds": self.quiesce_seconds,
        }


@dataclass
class RebalanceReport:
    """The outcome of one live migration (JSON-serialisable)."""

    source_shards: int
    target_shards: int
    moves: List[SessionRebalance] = field(default_factory=list)
    sweeps: int = 0
    routing_version: int = 0
    #: The registry's ``rebalance`` stats block at completion (parked /
    #: replayed quote counts, quiesce-time percentiles) — the same block the
    #: frontend stats frame carries, exported here for CI artifacts.
    stats: dict = field(default_factory=dict)

    @property
    def sessions(self) -> int:
        return len(self.moves)

    @property
    def relocated(self) -> int:
        """Moves that actually changed shards (all of them, by planning)."""
        return sum(1 for move in self.moves if move.source != move.target)

    def as_dict(self) -> dict:
        return {
            "source_shards": self.source_shards,
            "target_shards": self.target_shards,
            "sessions": self.sessions,
            "relocated": self.relocated,
            "sweeps": self.sweeps,
            "routing_version": self.routing_version,
            "stats": self.stats,
            "moves": [move.as_dict() for move in self.moves],
        }


class LiveRebalancer:
    """Drive a full N→M migration of a live :class:`ShardedRegistry`.

    Parameters
    ----------
    sharded:
        The live registry (its ``snapshot_dir`` must be set — session state
        moves through checkpoint files).
    target_shards:
        The desired shard count (1 ≤ M ≤ :data:`MAX_SHARDS`).
    quiesce_timeout / poll_interval / verify:
        Forwarded to every
        :meth:`~repro.serving.sharding.ShardedRegistry.rehome_session` call.
    after_move:
        Optional hook ``(move_count, SessionRebalance) -> None`` invoked
        after each completed move — the chaos tier uses it to kill a shard
        worker mid-migration.
    before_commit:
        Optional hook invoked with the routing freeze held, after the final
        plan came back empty and immediately before ``commit_routing`` —
        the regression tier uses it to race concurrent admissions into the
        commit window and assert they block until the new routing is live.
    """

    def __init__(
        self,
        sharded: ShardedRegistry,
        target_shards: int,
        quiesce_timeout: float = 30.0,
        poll_interval: float = 0.002,
        verify: bool = True,
        after_move: Optional[Callable[[int, SessionRebalance], None]] = None,
        before_commit: Optional[Callable[[], None]] = None,
    ) -> None:
        if not 1 <= target_shards <= MAX_SHARDS:
            raise RebalanceError(
                "target_shards must be in [1, %d], got %d"
                % (MAX_SHARDS, target_shards)
            )
        if sharded.snapshot_root is None:
            raise RebalanceError(
                "online rebalance requires the registry to have a snapshot_dir"
            )
        self.sharded = sharded
        self.target_shards = target_shards
        self.quiesce_timeout = quiesce_timeout
        self.poll_interval = poll_interval
        self.verify = verify
        self.after_move = after_move
        self.before_commit = before_commit

    # ------------------------------------------------------------------ #

    def known_keys(self) -> List[SessionKey]:
        """Every session the service knows: resident plus cold snapshots.

        Cold sessions (persisted then evicted, or never touched since a
        restart) exist only as ``.session.npz`` files or segment-index
        records — a migration that moved only resident sessions would
        strand them on directories the new placement never reads.
        """
        keys: Dict[SessionKey, None] = {}
        for shard_keys in self.sharded.resident_keys_by_shard().values():
            for key in shard_keys:
                keys.setdefault(key, None)
        try:
            dirs = discover_shard_dirs(self.sharded.snapshot_root)
        except ReshardingError:
            # No shard-NN directories yet: nothing has ever persisted.
            dirs = {}
        for directory in dirs.values():
            for name in sorted(os.listdir(directory)):
                if not name.endswith(SESSION_SUFFIX):
                    continue
                checkpoint = checkpoint_store.load_checkpoint(
                    os.path.join(directory, name)
                )
                keys.setdefault(checkpoint_session_key(checkpoint), None)
            for key in list_segment_sessions(directory):
                keys.setdefault(key, None)
        return list(keys)

    def plan(self) -> List[Tuple[SessionKey, int, int]]:
        """``(key, current_shard, desired_shard)`` for every relocating key."""
        moves: List[Tuple[SessionKey, int, int]] = []
        for key in self.known_keys():
            current = self.sharded.shard_of(key)
            desired = shard_of_key(key, self.target_shards)
            if current != desired:
                moves.append((key, current, desired))
        moves.sort(key=lambda item: item[0].slug())
        return moves

    def run(self) -> RebalanceReport:
        """Execute the full scale-out → sweep → commit → scale-in protocol."""
        sharded = self.sharded
        report = RebalanceReport(
            source_shards=sharded.num_shards, target_shards=self.target_shards
        )
        while sharded.num_shards < self.target_shards:
            sharded.add_shard()
        while True:
            # The final (empty) plan and the commit happen atomically under
            # the router's admission lock: a brand-new session key admitted
            # concurrently either lands *before* the planning pass (and is
            # planned and moved by this sweep) or blocks on the lock until
            # the new hash placement is committed — the residual
            # between-sweep-and-commit stranding window no longer exists.
            # A non-empty plan releases the lock before moving anything:
            # rehome_session must interleave with live traffic.
            with sharded.routing_freeze():
                plan = self.plan()
                if not plan:
                    if self.before_commit is not None:
                        self.before_commit()
                    report.routing_version = sharded.commit_routing(
                        self.target_shards
                    )
                    break
            report.sweeps += 1
            if report.sweeps > MAX_SWEEPS:
                raise RebalanceError(
                    "migration did not converge after %d sweeps: sessions are "
                    "being created on the old placement faster than they can "
                    "be moved (gate new-key admissions and retry)" % MAX_SWEEPS
                )
            for key, source, desired in plan:
                result = sharded.rehome_session(
                    key,
                    desired,
                    quiesce_timeout=self.quiesce_timeout,
                    poll_interval=self.poll_interval,
                    verify=self.verify,
                )
                if not result["moved"]:
                    continue
                move = SessionRebalance(
                    key=key,
                    source=result["source"],
                    target=result["target"],
                    resident=result["resident"],
                    hydrated=result["hydrated"],
                    file_moved=result["file_moved"],
                    parked_replayed=result["parked_replayed"],
                    quiesce_seconds=result["quiesce_seconds"],
                )
                report.moves.append(move)
                if self.after_move is not None:
                    self.after_move(len(report.moves), move)
        while sharded.num_shards > self.target_shards:
            sharded.remove_trailing_shard()
        report.stats = sharded.rebalance_stats.as_dict()
        return report


def rebalance_live(
    sharded: ShardedRegistry, target_shards: int, **kwargs
) -> RebalanceReport:
    """Migrate a live registry to ``target_shards`` (convenience wrapper)."""
    return LiveRebalancer(sharded, target_shards, **kwargs).run()
