"""Asyncio socket front end for the quote-serving subsystem.

:class:`QuoteFrontend` exposes a :class:`~repro.serving.service.QuoteService`
(or a :class:`~repro.serving.sharding.ShardedRegistry`) over TCP or a unix
domain socket.  The wire format is **length-prefixed JSON**: every frame is a
4-byte big-endian unsigned length followed by that many bytes of UTF-8 JSON.
Python's ``json`` emits shortest round-trip ``repr`` floats, so prices and
features survive the wire bit-exactly — which is what lets a closed-loop
replay *through the socket* stay bit-identical to the offline engine
(pinned by ``tests/serving/test_frontend.py`` for every golden family).

Client → server operations (``op`` field):

=============  =============================================================
``quote``      ``{app, segment, features: [..], reserve: x|null, id?}`` —
               enqueue a quote; the response frame arrives when the
               micro-batch window drains (``op: quote_result``, echoing
               the optional client-chosen ``id``).
``feedback``   ``{app, segment, quote_id, accepted}`` → ``feedback_ok``.
``flush``      force a drain → ``{op: flush_ok, drained: n}`` (quote
               results still go to their issuing connections).
``stats``      service/registry counters → ``{op: stats, ...}``.
``ping``       liveness → ``{op: pong}``.
=============  =============================================================

Failures arrive as ``{op: error, error: msg, id?, lost_quote_ids: [..]}``;
a drain failure notifies every connection whose quote was lost or requeued.

The server drives the backend from a single **drain task**: every submit
kicks it, and it otherwise ticks at ``drain_interval`` so the time bound of
the micro-batch window fires without traffic.  All backend access is
serialised behind one lock and pushed off the event loop via
``run_in_executor``, so a slow pricer (or a shard pipe round-trip) never
stalls frame parsing.

**Backpressure.**  A frontend degrades gracefully instead of leaking memory
when clients outrun the backend or stop reading:

* the waiter map (quote id → issuing connection) is bounded by
  ``max_waiters``; a quote that would exceed it is rejected with an
  ``error`` frame carrying ``code: "backpressure"`` (clients raise
  :class:`~repro.exceptions.BackpressureError`) and is **not** submitted;
* each connection has an outstanding-request budget
  (``max_outstanding_per_connection``), rejected the same way, so one
  pipelined client cannot monopolise the waiter map;
* response writes never await a slow reader: when a connection's transport
  write buffer exceeds ``max_write_buffer_bytes`` the connection is aborted
  and its waiters dropped (a stalled client costs one bounded buffer, not
  the drain task);
* a connection that disconnects mid-flight has its waiters removed — the
  backend still serves the quotes, the responses are simply discarded.

The admission checks run under the same lock as the submit, so the bounds
are exact, and the counters (`frontend_stats`, also in the ``stats`` frame)
make them assertable: ``peak_waiters`` can never exceed ``max_waiters``.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.engine.arrivals import MaterializedArrivals
from repro.engine.results import SimulationResult
from repro.engine.streaming import stream_rounds
from repro.engine.transcript import Transcript
from repro.exceptions import BackpressureError, ServingError
from repro.serving.requests import FeedbackEvent, QuoteRequest, QuoteResponse, SessionKey

#: Frame header: one 4-byte big-endian unsigned length.
FRAME_HEADER = struct.Struct(">I")

#: Upper bound on a single frame (defensive: a corrupt header must not OOM).
MAX_FRAME_BYTES = 16 * 1024 * 1024


# --------------------------------------------------------------------------- #
# Framing and payload codecs (shared by server and clients)
# --------------------------------------------------------------------------- #


def encode_frame(payload: dict) -> bytes:
    """One length-prefixed JSON frame."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ServingError("frame of %d bytes exceeds the %d-byte bound"
                           % (len(body), MAX_FRAME_BYTES))
    return FRAME_HEADER.pack(len(body)) + body


class FrameDecoder:
    """Incremental (sans-IO) decoder of the length-prefixed JSON framing.

    Feed it byte chunks as they arrive — at *any* split points, including
    mid-header and mid-body — and it yields the completed frames in order.
    A truncated frame simply stays buffered until the remaining bytes
    arrive; an oversized length header or an undecodable body raises
    :class:`ServingError` (after which the stream is no longer at a frame
    boundary and the connection must be dropped).  Shared by the blocking
    and the async clients, and pinned by the hypothesis round-trip tier
    (``tests/serving/test_wire_protocol.py``).
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self._buffer = bytearray()
        self._max_frame_bytes = max_frame_bytes

    @property
    def buffered(self) -> int:
        """Bytes of the (possibly incomplete) next frame held back."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[dict]:
        """Consume a chunk; return every frame it completed (maybe none)."""
        self._buffer.extend(data)
        frames: List[dict] = []
        while len(self._buffer) >= FRAME_HEADER.size:
            (length,) = FRAME_HEADER.unpack_from(self._buffer)
            if length > self._max_frame_bytes:
                raise ServingError("frame length %d exceeds the %d-byte bound"
                                   % (length, self._max_frame_bytes))
            end = FRAME_HEADER.size + length
            if len(self._buffer) < end:
                break
            body = bytes(self._buffer[FRAME_HEADER.size:end])
            del self._buffer[:end]
            try:
                frames.append(json.loads(body.decode("utf-8")))
            except (UnicodeDecodeError, ValueError) as exc:
                raise ServingError("undecodable frame body: %s" % exc)
        return frames


def frame_sold_at(result: dict, market_value: float) -> bool:
    """The engine's sale rule applied to a wire-format ``quote_result`` dict.

    The dict twin of :meth:`~repro.serving.requests.QuoteResponse.sold_at` —
    one definition of the sale shared by every settle site that works on
    frames (the socket closed-loop drivers and the networked load driver);
    the bit-identical equivalence contract depends on all of them agreeing.
    """
    posted_price = result.get("posted_price")
    if result.get("skipped") or posted_price is None:
        return False
    return posted_price <= market_value


def settle_frame_into_transcript(
    transcript: Transcript, index: int, result: dict, market_value: float
) -> bool:
    """Record one ``quote_result`` frame as an engine-format transcript row.

    The per-round settle step shared by both wire closed-loop drivers
    (:func:`serve_closed_loop_socket` and :func:`repro.serving.client.
    serve_closed_loop_async`): decide the sale with :func:`frame_sold_at`,
    write the price columns only on a posted round, and always record the
    decision flags.  One definition keeps the bit-identical equivalence
    contract from drifting between the sync and async paths.  Returns the
    sale outcome to feed back.
    """
    sold = frame_sold_at(result, market_value)
    if not result["skipped"] and result["posted_price"] is not None:
        transcript.link_prices[index] = result["link_price"]
        transcript.posted_prices[index] = result["posted_price"]
        transcript.sold[index] = sold
    transcript.skipped[index] = result["skipped"]
    transcript.exploratory[index] = result["exploratory"]
    return sold


def error_from_frame(frame: dict) -> ServingError:
    """Rebuild the typed client-side exception of one ``error`` frame.

    Frames with ``code: "backpressure"`` become
    :class:`~repro.exceptions.BackpressureError` (the request was rejected
    before submission — retry is safe); everything else is a plain
    :class:`ServingError` carrying the drain accounting the frame names.
    """
    cls = BackpressureError if frame.get("code") == "backpressure" else ServingError
    return cls(
        str(frame.get("error")),
        lost_quote_ids=frame.get("lost_quote_ids") or [],
    )


async def read_frame(reader: asyncio.StreamReader) -> Optional[dict]:
    """Read one frame; ``None`` on EOF or a dead connection.

    ``OSError`` covers more than a reset: a *write* to a disconnected peer
    poisons the stream reader with the same ``BrokenPipeError`` (asyncio
    delivers one ``connection_lost`` exception to both directions), and a
    reader that re-raised it would crash the connection handler instead of
    letting it clean up — treat every transport-level failure as EOF.
    """
    try:
        header = await reader.readexactly(FRAME_HEADER.size)
    except (asyncio.IncompleteReadError, OSError):
        return None
    (length,) = FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ServingError("frame length %d exceeds the %d-byte bound"
                           % (length, MAX_FRAME_BYTES))
    try:
        body = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, OSError):
        return None
    return json.loads(body.decode("utf-8"))


def request_from_payload(payload: dict) -> QuoteRequest:
    """Decode a ``quote`` frame into a :class:`QuoteRequest`."""
    try:
        key = SessionKey(app=str(payload["app"]), segment=str(payload["segment"]))
        features = np.asarray(payload["features"], dtype=float)
    except (KeyError, TypeError, ValueError) as exc:
        raise ServingError("malformed quote payload: %s" % exc)
    reserve = payload.get("reserve")
    return QuoteRequest(
        key=key,
        features=features,
        reserve=None if reserve is None else float(reserve),
        metadata=dict(payload.get("metadata") or {}),
    )


def response_to_payload(response: QuoteResponse) -> dict:
    """Encode a :class:`QuoteResponse` as a ``quote_result`` frame body."""
    return {
        "op": "quote_result",
        "quote_id": response.quote_id,
        "app": response.key.app,
        "segment": response.key.segment,
        "link_price": response.link_price,
        "posted_price": response.posted_price,
        "exploratory": bool(response.exploratory),
        "skipped": bool(response.skipped),
        "round_index": int(response.round_index),
        "latency_seconds": response.latency_seconds,
    }


# --------------------------------------------------------------------------- #
# Server
# --------------------------------------------------------------------------- #


@dataclass(eq=False)  # identity semantics: connections live in sets
class _Connection:
    """Server-side state of one client connection."""

    writer: asyncio.StreamWriter
    #: Quote ids submitted on this connection and not yet answered — the
    #: per-connection budget and the disconnect cleanup both read this.
    outstanding: Set[int] = field(default_factory=set)
    #: Set when the connection was aborted as a slow reader; suppresses
    #: further writes while the handler unwinds.
    aborted: bool = False


@dataclass
class FrontendStats:
    """Backpressure and lifecycle counters of one :class:`QuoteFrontend`."""

    connections_opened: int = 0
    connections_closed: int = 0
    rejected_waiter_map: int = 0
    rejected_connection_budget: int = 0
    slow_reader_disconnects: int = 0
    peak_waiters: int = 0

    @property
    def rejected(self) -> int:
        """Total backpressure rejections (waiter map + connection budget)."""
        return self.rejected_waiter_map + self.rejected_connection_budget


class QuoteFrontend:
    """Length-prefixed-JSON socket server over a quote-serving backend.

    ``backend`` is anything with the service surface this module drives:
    ``submit(request) -> quote_id``, ``poll() -> [QuoteResponse]``,
    ``flush() -> [QuoteResponse]``, ``feedback_batch(events)`` — i.e. a
    :class:`QuoteService` or a :class:`ShardedRegistry`.

    The three backpressure bounds (see the module docstring): ``max_waiters``
    caps the waiter map across all connections,
    ``max_outstanding_per_connection`` budgets one connection's pipelined
    quotes, and ``max_write_buffer_bytes`` caps the bytes buffered for a
    reader that stopped consuming responses (beyond it the connection is
    aborted and its waiters dropped).
    """

    def __init__(
        self,
        backend,
        drain_interval: float = 0.001,
        max_waiters: int = 16384,
        max_outstanding_per_connection: int = 1024,
        max_write_buffer_bytes: int = 8 * 1024 * 1024,
    ) -> None:
        if drain_interval <= 0:
            raise ValueError("drain_interval must be positive, got %g" % drain_interval)
        if max_waiters < 1:
            raise ValueError("max_waiters must be at least 1, got %d" % max_waiters)
        if max_outstanding_per_connection < 1:
            raise ValueError(
                "max_outstanding_per_connection must be at least 1, got %d"
                % max_outstanding_per_connection
            )
        if max_write_buffer_bytes < 1:
            raise ValueError(
                "max_write_buffer_bytes must be positive, got %d" % max_write_buffer_bytes
            )
        self.backend = backend
        self.drain_interval = drain_interval
        self.max_waiters = max_waiters
        self.max_outstanding_per_connection = max_outstanding_per_connection
        self.max_write_buffer_bytes = max_write_buffer_bytes
        self.stats = FrontendStats()
        self._lock = asyncio.Lock()
        self._kick = asyncio.Event()
        self._waiters: Dict[int, Tuple[_Connection, Any]] = {}
        self._connections: Set[_Connection] = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._drain_task: Optional[asyncio.Task] = None
        self._running = False

    @property
    def waiter_count(self) -> int:
        """Quotes currently awaiting a response across all connections."""
        return len(self._waiters)

    # -- lifecycle ------------------------------------------------------ #

    async def start(
        self,
        host: Optional[str] = None,
        port: int = 0,
        unix_path: Optional[str] = None,
    ) -> None:
        """Bind and start serving on TCP ``host:port`` or ``unix_path``."""
        if self._server is not None:
            raise ServingError("frontend already started")
        if (unix_path is None) == (host is None):
            raise ValueError("pass exactly one of host/port or unix_path")
        self._running = True
        if unix_path is not None:
            self._server = await asyncio.start_unix_server(self._handle, path=unix_path)
        else:
            self._server = await asyncio.start_server(self._handle, host=host, port=port)
        self._drain_task = asyncio.get_running_loop().create_task(self._drain_loop())

    @property
    def addresses(self) -> List:
        """Bound socket addresses (``(host, port)`` tuples or unix paths)."""
        if self._server is None:
            return []
        return [sock.getsockname() for sock in self._server.sockets]

    async def stop(self) -> None:
        """Stop accepting, cancel the drain task, hang up every connection.

        Clean even with quotes in flight: live connections are closed (their
        clients observe EOF and fail their pending futures), the waiter map
        is cleared, and the drain task is cancelled mid-await if necessary.
        """
        self._running = False
        if self._drain_task is not None:
            self._kick.set()
            self._drain_task.cancel()
            try:
                await self._drain_task
            except asyncio.CancelledError:
                pass
            self._drain_task = None
        # Hang up before waiting on the server: connection handlers blocked
        # in read_frame observe EOF and exit, so wait_closed cannot hang on
        # a client that never disconnects.
        for connection in list(self._connections):
            try:
                connection.writer.close()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        self._waiters.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- backend access (serialised, off-loop) -------------------------- #

    async def _backend_call(self, method: str, *args):
        loop = asyncio.get_running_loop()
        function = getattr(self.backend, method)
        async with self._lock:
            return await loop.run_in_executor(None, function, *args)

    # -- the drain task -------------------------------------------------- #

    async def _drain_loop(self) -> None:
        """Poll the backend whenever kicked, else every ``drain_interval``.

        ``poll`` respects the backend's micro-batch window, so calling it on
        every kick never over-drains; the interval tick catches windows that
        close by the time bound with no new traffic.
        """
        while self._running:
            try:
                await asyncio.wait_for(self._kick.wait(), timeout=self.drain_interval)
            except asyncio.TimeoutError:
                pass
            self._kick.clear()
            await self._drain_once("poll")

    async def _drain_once(self, method: str) -> int:
        try:
            responses = await self._backend_call(method)
        except ServingError as exc:
            self._notify_drain_failure(exc)
            return 0
        self._route(responses)
        return len(responses)

    def _route(self, responses) -> None:
        for response in responses:
            connection, client_id = self._waiters.pop(response.quote_id, (None, None))
            if connection is None:
                continue
            connection.outstanding.discard(response.quote_id)
            payload = response_to_payload(response)
            if client_id is not None:
                payload["id"] = client_id
            self._write(connection, payload)

    def _notify_drain_failure(self, exc: ServingError) -> None:
        """Fan a drain failure out to the connections it affects.

        Lost quotes get an ``error`` frame (they will never be served);
        requeued quotes stay registered — their responses arrive on a later
        drain.  A response the error carries (synchronous-path hand-over)
        is routed normally.
        """
        if exc.response is not None:
            self._route([exc.response])
        for quote_id in exc.lost_quote_ids:
            connection, client_id = self._waiters.pop(quote_id, (None, None))
            if connection is None:
                continue
            connection.outstanding.discard(quote_id)
            payload = {
                "op": "error",
                "code": "drain",
                "error": str(exc),
                "quote_id": quote_id,
                "lost_quote_ids": list(exc.lost_quote_ids),
            }
            if client_id is not None:
                payload["id"] = client_id
            self._write(connection, payload)

    def _write(self, connection: _Connection, payload: dict) -> None:
        """Write one frame without ever awaiting a slow reader.

        ``StreamWriter.drain()`` would block the drain task behind a client
        that stopped consuming; instead the write buffer is inspected after
        every write, and a connection holding more than
        ``max_write_buffer_bytes`` is aborted — its memory cost is bounded
        and the drain task never stalls.
        """
        writer = connection.writer
        if connection.aborted or writer.is_closing():
            return
        try:
            writer.write(encode_frame(payload))
        except (ConnectionResetError, BrokenPipeError, OSError):
            return
        if writer.transport.get_write_buffer_size() > self.max_write_buffer_bytes:
            self._abort_slow_reader(connection)

    def _abort_slow_reader(self, connection: _Connection) -> None:
        connection.aborted = True
        self.stats.slow_reader_disconnects += 1
        self._forget_connection_waiters(connection)
        try:
            connection.writer.transport.abort()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    def _forget_connection_waiters(self, connection: _Connection) -> None:
        """Drop every waiter registered by one connection (gone or aborted).

        The backend still serves the underlying quotes; their responses find
        no waiter and are discarded by :meth:`_route` — nothing leaks, and
        nothing is double-served.
        """
        for quote_id in connection.outstanding:
            self._waiters.pop(quote_id, None)
        connection.outstanding.clear()

    # -- per-connection protocol ---------------------------------------- #

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        connection = _Connection(writer=writer)
        self._connections.add(connection)
        self.stats.connections_opened += 1
        try:
            while True:
                try:
                    message = await read_frame(reader)
                except (ServingError, ValueError) as exc:
                    # Oversized header or undecodable JSON: the stream is no
                    # longer at a frame boundary — report and hang up.
                    self._write(
                        connection, {"op": "error", "code": "protocol", "error": str(exc)}
                    )
                    break
                if message is None or connection.aborted:
                    break
                await self._dispatch(message, connection)
        finally:
            self._connections.discard(connection)
            self.stats.connections_closed += 1
            # Mid-flight disconnect: the client is gone, so nobody will ever
            # read its responses — unregister them or the waiter map grows
            # by every abandoned quote.
            self._forget_connection_waiters(connection)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    def _admit_quote(self, connection: _Connection) -> Optional[str]:
        """The backpressure gate; a rejection reason, or ``None`` to admit.

        Called with the backend lock held (atomic with the submit and the
        waiter registration), so the bounds are exact — the waiter map can
        never exceed ``max_waiters``, provably.
        """
        if len(self._waiters) >= self.max_waiters:
            self.stats.rejected_waiter_map += 1
            return "waiter map full (%d quotes in flight, bound %d)" % (
                len(self._waiters),
                self.max_waiters,
            )
        if len(connection.outstanding) >= self.max_outstanding_per_connection:
            self.stats.rejected_connection_budget += 1
            return "connection budget exhausted (%d outstanding, bound %d)" % (
                len(connection.outstanding),
                self.max_outstanding_per_connection,
            )
        return None

    async def _dispatch(self, message: dict, connection: _Connection) -> None:
        op = message.get("op")
        client_id = message.get("id")
        try:
            if op == "quote":
                request = request_from_payload(message)
                # Registering the waiter must be atomic with the submit
                # w.r.t. the drain task's poll (both hold the backend lock),
                # or a drain racing in between could produce the response
                # before anyone is listening for it.
                loop = asyncio.get_running_loop()
                async with self._lock:
                    rejection = self._admit_quote(connection)
                    if rejection is None:
                        quote_id = await loop.run_in_executor(
                            None, self.backend.submit, request
                        )
                        # A stop() racing this submit has already cleared
                        # the waiter map; registering now would leak the
                        # entry forever (nothing routes after shutdown).
                        if self._running:
                            self._waiters[quote_id] = (connection, client_id)
                            connection.outstanding.add(quote_id)
                            self.stats.peak_waiters = max(
                                self.stats.peak_waiters, len(self._waiters)
                            )
                if rejection is not None:
                    self._write(
                        connection,
                        {
                            "op": "error",
                            "code": "backpressure",
                            "error": "quote rejected: %s" % rejection,
                            "id": client_id,
                        },
                    )
                    return
                self._kick.set()
            elif op == "feedback":
                event = FeedbackEvent(
                    key=SessionKey(
                        app=str(message["app"]), segment=str(message["segment"])
                    ),
                    quote_id=int(message["quote_id"]),
                    accepted=bool(message["accepted"]),
                )
                await self._backend_call("feedback_batch", [event])
                self._write(connection, {"op": "feedback_ok", "id": client_id})
            elif op == "flush":
                drained = await self._drain_once("flush")
                self._write(
                    connection, {"op": "flush_ok", "drained": drained, "id": client_id}
                )
            elif op == "stats":
                payload = await self._collect_stats()
                payload.update({"op": "stats", "id": client_id})
                self._write(connection, payload)
            elif op == "ping":
                self._write(connection, {"op": "pong", "id": client_id})
            else:
                raise ServingError("unknown op %r" % (op,))
        except KeyError as exc:
            self._write(
                connection,
                {"op": "error", "error": "missing field %s" % exc, "id": client_id},
            )
        except (ServingError, TypeError, ValueError) as exc:
            # TypeError/ValueError cover malformed field values (a null
            # quote_id, a string where a number belongs): answer with an
            # error frame instead of killing the connection mid-protocol.
            self._write(connection, {"op": "error", "error": str(exc), "id": client_id})

    def frontend_stats(self) -> dict:
        """The frontend's own gauges, counters, and configured bounds."""
        return {
            "waiters": len(self._waiters),
            "peak_waiters": self.stats.peak_waiters,
            "connections_open": len(self._connections),
            "connections_opened": self.stats.connections_opened,
            "connections_closed": self.stats.connections_closed,
            "rejected_waiter_map": self.stats.rejected_waiter_map,
            "rejected_connection_budget": self.stats.rejected_connection_budget,
            "rejected": self.stats.rejected,
            "slow_reader_disconnects": self.stats.slow_reader_disconnects,
            "limits": {
                "max_waiters": self.max_waiters,
                "max_outstanding_per_connection": self.max_outstanding_per_connection,
                "max_write_buffer_bytes": self.max_write_buffer_bytes,
            },
        }

    async def _collect_stats(self) -> dict:
        backend = self.backend
        if hasattr(backend, "stats") and callable(backend.stats):
            stats = await self._backend_call("stats")  # ShardedRegistry
            stats.pop("per_shard", None)
            payload = dict(stats)
        else:
            # QuoteService: dataclass counters + its registry.
            payload = {
                "quotes_served": backend.stats.quotes_served,
                "drains": backend.stats.drains,
                "batched_proposals": backend.stats.batched_proposals,
                "feedback_applied": backend.stats.feedback_applied,
                "latency": backend.stats.latency_summary().as_dict(),
                "sessions_resident": backend.registry.resident_count,
                "registry": backend.registry.stats.as_dict(),
            }
        payload["frontend"] = self.frontend_stats()
        return payload


# --------------------------------------------------------------------------- #
# Background-thread harness (examples, tests, the bench)
# --------------------------------------------------------------------------- #


@dataclass
class FrontendHandle:
    """A running frontend on its own event-loop thread."""

    frontend: QuoteFrontend
    thread: threading.Thread
    loop: asyncio.AbstractEventLoop
    address: Any

    def stop(self, timeout: float = 5.0) -> None:
        future = asyncio.run_coroutine_threadsafe(self.frontend.stop(), self.loop)
        future.result(timeout)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout)

    def __enter__(self) -> "FrontendHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_frontend_thread(
    backend,
    host: Optional[str] = None,
    port: int = 0,
    unix_path: Optional[str] = None,
    drain_interval: float = 0.001,
    startup_timeout: float = 10.0,
    **frontend_options,
) -> FrontendHandle:
    """Run a :class:`QuoteFrontend` on a daemon thread; returns its handle.

    The handle's ``address`` is the bound unix path, or the ``(host, port)``
    actually bound (so ``port=0`` works for tests).  Extra keyword arguments
    (``max_waiters``, ``max_outstanding_per_connection``,
    ``max_write_buffer_bytes``) are forwarded to :class:`QuoteFrontend`.
    """
    frontend = QuoteFrontend(backend, drain_interval=drain_interval, **frontend_options)
    started = threading.Event()
    failure: List[BaseException] = []
    loop_holder: List[asyncio.AbstractEventLoop] = []

    def _run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        loop_holder.append(loop)

        async def _start() -> None:
            await frontend.start(host=host, port=port, unix_path=unix_path)

        try:
            loop.run_until_complete(_start())
        except BaseException as exc:  # surface bind errors to the caller
            failure.append(exc)
            started.set()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(target=_run, name="quote-frontend", daemon=True)
    thread.start()
    if not started.wait(startup_timeout):
        raise ServingError("frontend failed to start within %gs" % startup_timeout)
    if failure:
        raise failure[0]
    address = unix_path if unix_path is not None else frontend.addresses[0]
    return FrontendHandle(
        frontend=frontend, thread=thread, loop=loop_holder[0], address=address
    )


# --------------------------------------------------------------------------- #
# Synchronous client
# --------------------------------------------------------------------------- #


class QuoteSocketClient:
    """Blocking client speaking the length-prefixed JSON protocol.

    One outstanding request at a time per client: frames on a connection are
    ordered, so after a ``quote`` the next ``quote_result``/``error`` frame
    answers it.  For concurrent traffic open several clients (the server
    multiplexes connections).
    """

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        unix_path: Optional[str] = None,
        timeout: float = 30.0,
    ) -> None:
        if (unix_path is None) == (host is None) or (
            unix_path is None and port is None
        ):
            raise ValueError("pass exactly one of host/port or unix_path")
        if unix_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(unix_path)
        else:
            self._sock = socket.create_connection((host, int(port)), timeout=timeout)
        self._decoder = FrameDecoder()
        self._frames: "deque[dict]" = deque()

    # -- framing -------------------------------------------------------- #

    def _send(self, payload: dict) -> None:
        self._sock.sendall(encode_frame(payload))

    def read_frame(self) -> dict:
        while not self._frames:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ServingError("server closed the connection mid-frame")
            self._frames.extend(self._decoder.feed(chunk))
        return self._frames.popleft()

    def _expect(self, op: str) -> dict:
        frame = self.read_frame()
        if frame.get("op") == "error":
            raise error_from_frame(frame)
        if frame.get("op") != op:
            raise ServingError("expected %r frame, got %r" % (op, frame.get("op")))
        return frame

    # -- operations ----------------------------------------------------- #

    def quote(self, key: SessionKey, features, reserve: Optional[float] = None) -> dict:
        """Request one quote and block until its result frame arrives."""
        self._send(
            {
                "op": "quote",
                "app": key.app,
                "segment": key.segment,
                "features": [float(value) for value in np.asarray(features, dtype=float)],
                "reserve": None if reserve is None else float(reserve),
            }
        )
        return self._expect("quote_result")

    def feedback(self, key: SessionKey, quote_id: int, accepted: bool) -> None:
        self._send(
            {
                "op": "feedback",
                "app": key.app,
                "segment": key.segment,
                "quote_id": int(quote_id),
                "accepted": bool(accepted),
            }
        )
        self._expect("feedback_ok")

    def flush(self) -> int:
        self._send({"op": "flush"})
        return int(self._expect("flush_ok")["drained"])

    def stats(self) -> dict:
        self._send({"op": "stats"})
        return self._expect("stats")

    def ping(self) -> None:
        self._send({"op": "ping"})
        self._expect("pong")

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "QuoteSocketClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# --------------------------------------------------------------------------- #
# Closed-loop replay through the socket
# --------------------------------------------------------------------------- #


def serve_closed_loop_socket(
    client: QuoteSocketClient,
    key: SessionKey,
    materialized: MaterializedArrivals,
    pricer_name: Optional[str] = None,
) -> SimulationResult:
    """Drive one session through a materialised market *over the socket*.

    The socket twin of :func:`repro.serving.loop.serve_closed_loop`: one
    quote per round, the sale settled against the realised market value with
    the same scalar comparison, feedback applied before the next round.
    Because JSON floats round-trip exactly and the backend drives the same
    propose/update protocol, the resulting transcript is bit-identical to
    the offline engine — through the socket *and* (with a sharded backend)
    through a process boundary.
    """
    transcript = Transcript.for_materialized(materialized)
    for round_ in stream_rounds(materialized):
        result = client.quote(key, round_.features, reserve=round_.reserve)
        sold = settle_frame_into_transcript(
            transcript, round_.index, result, round_.market_value
        )
        client.feedback(key, result["quote_id"], sold)
    transcript.finalize_regrets()
    return SimulationResult(
        pricer_name=pricer_name if pricer_name is not None else str(key),
        transcript=transcript,
    )
