"""Asyncio socket front end for the quote-serving subsystem.

:class:`QuoteFrontend` exposes a :class:`~repro.serving.service.QuoteService`
(or a :class:`~repro.serving.sharding.ShardedRegistry`) over TCP or a unix
domain socket.  The framing and the two wire formats (length-prefixed JSON
v1, columnar binary v2) live in :mod:`repro.serving.wire`; both round-trip
prices and features bit-exactly, which is what lets a closed-loop replay
*through the socket* stay bit-identical to the offline engine (pinned by
``tests/serving/test_frontend.py`` and ``test_wire_v2.py`` for every golden
family, on both protocol versions).

Client → server operations (``op`` field):

==================  ========================================================
``quote``           ``{app, segment, features: [..], reserve: x|null,
                    id?}`` — enqueue a quote; the response frame arrives
                    when the micro-batch window drains (``op:
                    quote_result``, echoing the optional client-chosen
                    ``id``).
``quote_batch``     the v2 columnar batch of ``quote`` items (one frame,
                    one backend submit for the whole batch).
``feedback``        ``{app, segment, quote_id, accepted}`` →
                    ``feedback_ok``.
``feedback_batch``  the v2 columnar batch of ``feedback`` items.
``hello``           ``{wire: 2}`` → ``{op: hello_ok, wire: 2}`` — upgrade
                    the connection to the binary v2 responses; JSON v1
                    stays the default (old clients keep working, old
                    servers answer ``hello`` with an ``error`` frame and
                    the client stays on v1).
``flush``           force a drain → ``{op: flush_ok, drained: n}``.
``stats``           service/registry counters → ``{op: stats, ...}``.
``ping``            liveness → ``{op: pong}``.
==================  ========================================================

Failures arrive as ``{op: error, error: msg, id?, lost_quote_ids: [..]}``;
a drain failure notifies every connection whose quote was lost or requeued.

**Per-tick frame dispatch.**  The connection handler reads socket chunks
into a sans-IO :class:`~repro.serving.wire.FrameDecoder`; every chunk yields
the *list* of frames that arrived in that event-loop tick.  Consecutive
``quote`` frames of a tick (and the items of a v2 ``quote_batch``) are
coalesced into **one** backend ``submit_many`` call — one lock acquisition
and one executor hop for the whole run, instead of one per frame — and
consecutive ``feedback`` frames into one ``feedback_many`` call with
per-event outcomes.  Coalescing never reorders a connection's operations:
only *adjacent* frames of the same kind merge, so the closed-loop protocol
(feedback before the next quote) is preserved exactly.  Responses are
batched symmetrically: each drain writes one connection's responses as a
single v2 ``quote_result_batch`` frame (or one contiguous v1 buffer), so a
window of quotes crosses the wire as one frame in each direction.

All backend access is serialised behind one lock and pushed off the event
loop via a dedicated single-worker executor owned by the frontend (no
per-call thread churn; the submit serialisation point is explicit), so a
slow pricer (or a shard pipe round-trip) never stalls frame parsing.

**Backpressure.**  A frontend degrades gracefully instead of leaking memory
when clients outrun the backend or stop reading:

* the waiter map (quote id → issuing connection) is bounded by
  ``max_waiters``; a quote that would exceed it is rejected with an
  ``error`` frame carrying ``code: "backpressure"`` (clients raise
  :class:`~repro.exceptions.BackpressureError`) and is **not** submitted;
* each connection has an outstanding-request budget
  (``max_outstanding_per_connection``), rejected the same way, so one
  pipelined client cannot monopolise the waiter map;
* response writes never await a slow reader: when a connection's transport
  write buffer exceeds ``max_write_buffer_bytes`` the connection is aborted
  and its waiters dropped (a stalled client costs one bounded buffer, not
  the drain task);
* a connection that disconnects mid-flight has its waiters removed — the
  backend still serves the quotes, the responses are simply discarded.

The admission checks run under the same lock as the submit — including the
quotes admitted earlier in the *same* coalesced batch — so the bounds are
exact, and the counters (`frontend_stats`, also in the ``stats`` frame)
make them assertable: ``peak_waiters`` can never exceed ``max_waiters``.
"""

from __future__ import annotations

import asyncio
import socket
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.engine.arrivals import MaterializedArrivals
from repro.engine.results import SimulationResult
from repro.engine.streaming import stream_rounds
from repro.engine.transcript import Transcript
from repro.exceptions import BackpressureError, ServingError
from repro.serving.requests import FeedbackEvent, QuoteRequest, QuoteResponse, SessionKey
from repro.serving.wire import (  # noqa: F401  (re-exported: historical home)
    FRAME_HEADER,
    MAX_FRAME_BYTES,
    WIRE_V1,
    WIRE_V2,
    FrameDecoder,
    encode_feedback_batch,
    encode_feedback_ok_batch,
    encode_frame,
    encode_frames,
    encode_quote_batch,
    encode_quote_result_batch,
    read_frame,
)

#: Socket read size of the per-connection tick loop.
READ_CHUNK_BYTES = 256 * 1024


# --------------------------------------------------------------------------- #
# Payload codecs (shared by server and clients)
# --------------------------------------------------------------------------- #


def frame_sold_at(result: dict, market_value: float) -> bool:
    """The engine's sale rule applied to a wire-format ``quote_result`` dict.

    The dict twin of :meth:`~repro.serving.requests.QuoteResponse.sold_at` —
    one definition of the sale shared by every settle site that works on
    frames (the socket closed-loop drivers and the networked load driver);
    the bit-identical equivalence contract depends on all of them agreeing.
    """
    posted_price = result.get("posted_price")
    if result.get("skipped") or posted_price is None:
        return False
    return posted_price <= market_value


def settle_frame_into_transcript(
    transcript: Transcript, index: int, result: dict, market_value: float
) -> bool:
    """Record one ``quote_result`` frame as an engine-format transcript row.

    The per-round settle step shared by both wire closed-loop drivers
    (:func:`serve_closed_loop_socket` and :func:`repro.serving.client.
    serve_closed_loop_async`): decide the sale with :func:`frame_sold_at`,
    write the price columns only on a posted round, and always record the
    decision flags.  One definition keeps the bit-identical equivalence
    contract from drifting between the sync and async paths.  Returns the
    sale outcome to feed back.
    """
    sold = frame_sold_at(result, market_value)
    if not result["skipped"] and result["posted_price"] is not None:
        transcript.link_prices[index] = result["link_price"]
        transcript.posted_prices[index] = result["posted_price"]
        transcript.sold[index] = sold
    transcript.skipped[index] = result["skipped"]
    transcript.exploratory[index] = result["exploratory"]
    return sold


def error_from_frame(frame: dict) -> ServingError:
    """Rebuild the typed client-side exception of one ``error`` frame.

    Frames with ``code: "backpressure"`` become
    :class:`~repro.exceptions.BackpressureError` (the request was rejected
    before submission — retry is safe); everything else is a plain
    :class:`ServingError` carrying the drain accounting the frame names.
    """
    cls = BackpressureError if frame.get("code") == "backpressure" else ServingError
    return cls(
        str(frame.get("error")),
        lost_quote_ids=frame.get("lost_quote_ids") or [],
    )


def request_from_payload(payload: dict) -> QuoteRequest:
    """Decode a ``quote`` frame into a :class:`QuoteRequest`."""
    try:
        key = SessionKey(app=str(payload["app"]), segment=str(payload["segment"]))
        features = np.asarray(payload["features"], dtype=float)
    except (KeyError, TypeError, ValueError) as exc:
        raise ServingError("malformed quote payload: %s" % exc)
    reserve = payload.get("reserve")
    return QuoteRequest(
        key=key,
        features=features,
        reserve=None if reserve is None else float(reserve),
        metadata=dict(payload.get("metadata") or {}),
    )


def response_to_payload(response: QuoteResponse) -> dict:
    """Encode a :class:`QuoteResponse` as a ``quote_result`` frame body."""
    return {
        "op": "quote_result",
        "quote_id": response.quote_id,
        "app": response.key.app,
        "segment": response.key.segment,
        "link_price": response.link_price,
        "posted_price": response.posted_price,
        "exploratory": bool(response.exploratory),
        "skipped": bool(response.skipped),
        "round_index": int(response.round_index),
        "latency_seconds": response.latency_seconds,
    }


# --------------------------------------------------------------------------- #
# Server
# --------------------------------------------------------------------------- #


@dataclass(eq=False)  # identity semantics: connections live in sets
class _Connection:
    """Server-side state of one client connection."""

    writer: asyncio.StreamWriter
    #: Negotiated protocol version for *responses* (requests are
    #: self-describing); upgraded by a ``hello`` frame.
    wire_version: int = WIRE_V1
    #: Quote ids submitted on this connection and not yet answered — the
    #: per-connection budget and the disconnect cleanup both read this.
    outstanding: Set[int] = field(default_factory=set)
    #: Set when the connection was aborted as a slow reader; suppresses
    #: further writes while the handler unwinds.
    aborted: bool = False


class BatchSizeHistogram:
    """Power-of-two histogram of batch sizes (1, 2, ≤4, ≤8, ...).

    Cheap enough for the hot path (one ``bit_length`` per record) while
    still answering the question the bench report needs: how large are the
    coalesced batches actually getting?
    """

    def __init__(self) -> None:
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0

    def record(self, size: int) -> None:
        bucket = 1 << max(0, int(size) - 1).bit_length()  # smallest pow2 >= size
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += int(size)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": round(self.mean, 3),
            "buckets": {
                "<=%d" % bucket: self._buckets[bucket]
                for bucket in sorted(self._buckets)
            },
        }


@dataclass
class WireStats:
    """Wire and dispatch counters of one :class:`QuoteFrontend`.

    Frames and bytes are counted per protocol version (in: the actual frame
    encoding; out: the encoding chosen for the write), and the dispatch
    histograms attribute the throughput: how many frames arrive per
    event-loop tick, how many quotes coalesce into one executor hop, and
    how many responses batch into one write.
    """

    frames_in_v1: int = 0
    frames_in_v2: int = 0
    bytes_in: int = 0
    frames_out_v1: int = 0
    frames_out_v2: int = 0
    bytes_out: int = 0
    ticks: int = 0
    executor_hops: int = 0
    frames_per_tick: BatchSizeHistogram = field(default_factory=BatchSizeHistogram)
    submit_batch: BatchSizeHistogram = field(default_factory=BatchSizeHistogram)
    feedback_batch: BatchSizeHistogram = field(default_factory=BatchSizeHistogram)
    response_batch: BatchSizeHistogram = field(default_factory=BatchSizeHistogram)

    def as_dict(self) -> dict:
        return {
            "frames_in": {"v1": self.frames_in_v1, "v2": self.frames_in_v2},
            "frames_out": {"v1": self.frames_out_v1, "v2": self.frames_out_v2},
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "ticks": self.ticks,
            "executor_hops": self.executor_hops,
            "frames_per_tick": self.frames_per_tick.as_dict(),
            "submit_batch": self.submit_batch.as_dict(),
            "feedback_batch": self.feedback_batch.as_dict(),
            "response_batch": self.response_batch.as_dict(),
        }


@dataclass
class FrontendStats:
    """Backpressure and lifecycle counters of one :class:`QuoteFrontend`."""

    connections_opened: int = 0
    connections_closed: int = 0
    rejected_waiter_map: int = 0
    rejected_connection_budget: int = 0
    slow_reader_disconnects: int = 0
    peak_waiters: int = 0

    @property
    def rejected(self) -> int:
        """Total backpressure rejections (waiter map + connection budget)."""
        return self.rejected_waiter_map + self.rejected_connection_budget


class QuoteFrontend:
    """Socket server (JSON v1 / binary v2) over a quote-serving backend.

    ``backend`` is anything with the service surface this module drives:
    ``submit(request) -> quote_id``, ``poll() -> [QuoteResponse]``,
    ``flush() -> [QuoteResponse]``, ``feedback_batch(events)`` — i.e. a
    :class:`QuoteService` or a :class:`ShardedRegistry`.  The batched
    entry points (``submit_many``, ``feedback_many``) are used when the
    backend provides them, with a single-hop fallback otherwise.

    The three backpressure bounds (see the module docstring): ``max_waiters``
    caps the waiter map across all connections,
    ``max_outstanding_per_connection`` budgets one connection's pipelined
    quotes, and ``max_write_buffer_bytes`` caps the bytes buffered for a
    reader that stopped consuming responses (beyond it the connection is
    aborted and its waiters dropped).
    """

    def __init__(
        self,
        backend,
        drain_interval: float = 0.001,
        max_waiters: int = 16384,
        max_outstanding_per_connection: int = 1024,
        max_write_buffer_bytes: int = 8 * 1024 * 1024,
    ) -> None:
        if drain_interval <= 0:
            raise ValueError("drain_interval must be positive, got %g" % drain_interval)
        if max_waiters < 1:
            raise ValueError("max_waiters must be at least 1, got %d" % max_waiters)
        if max_outstanding_per_connection < 1:
            raise ValueError(
                "max_outstanding_per_connection must be at least 1, got %d"
                % max_outstanding_per_connection
            )
        if max_write_buffer_bytes < 1:
            raise ValueError(
                "max_write_buffer_bytes must be positive, got %d" % max_write_buffer_bytes
            )
        self.backend = backend
        self.drain_interval = drain_interval
        self.max_waiters = max_waiters
        self.max_outstanding_per_connection = max_outstanding_per_connection
        self.max_write_buffer_bytes = max_write_buffer_bytes
        self.stats = FrontendStats()
        self.wire_stats = WireStats()
        self._lock = asyncio.Lock()
        self._kick = asyncio.Event()
        self._waiters: Dict[int, Tuple[_Connection, Any]] = {}
        self._connections: Set[_Connection] = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._drain_task: Optional[asyncio.Task] = None
        #: Dedicated single worker for all backend calls: no thread churn,
        #: and the backend serialisation point is explicit (the lock orders
        #: the calls; the worker runs them).  Created in start(), shut down
        #: in stop().
        self._executor: Optional[ThreadPoolExecutor] = None
        self._running = False

    @property
    def waiter_count(self) -> int:
        """Quotes currently awaiting a response across all connections."""
        return len(self._waiters)

    # -- lifecycle ------------------------------------------------------ #

    async def start(
        self,
        host: Optional[str] = None,
        port: int = 0,
        unix_path: Optional[str] = None,
    ) -> None:
        """Bind and start serving on TCP ``host:port`` or ``unix_path``."""
        if self._server is not None:
            raise ServingError("frontend already started")
        if (unix_path is None) == (host is None):
            raise ValueError("pass exactly one of host/port or unix_path")
        self._running = True
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="quote-frontend-backend"
        )
        if unix_path is not None:
            self._server = await asyncio.start_unix_server(self._handle, path=unix_path)
        else:
            self._server = await asyncio.start_server(self._handle, host=host, port=port)
        self._drain_task = asyncio.get_running_loop().create_task(self._drain_loop())

    @property
    def addresses(self) -> List:
        """Bound socket addresses (``(host, port)`` tuples or unix paths)."""
        if self._server is None:
            return []
        return [sock.getsockname() for sock in self._server.sockets]

    async def stop(self) -> None:
        """Stop accepting, cancel the drain task, hang up every connection.

        Clean even with quotes in flight: live connections are closed (their
        clients observe EOF and fail their pending futures), the waiter map
        is cleared, the drain task is cancelled mid-await if necessary, and
        the backend executor is shut down (in-flight call completes).
        """
        self._running = False
        if self._drain_task is not None:
            self._kick.set()
            self._drain_task.cancel()
            try:
                await self._drain_task
            except asyncio.CancelledError:
                pass
            self._drain_task = None
        # Hang up before waiting on the server: connection handlers blocked
        # on a socket read observe EOF and exit, so wait_closed cannot hang
        # on a client that never disconnects.
        for connection in list(self._connections):
            try:
                connection.writer.close()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        self._waiters.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # -- backend access (serialised, off-loop) -------------------------- #

    def _run_in_executor(self, loop, function, *args):
        executor = self._executor
        if executor is None:
            raise ServingError("frontend is not running")
        self.wire_stats.executor_hops += 1
        try:
            return loop.run_in_executor(executor, function, *args)
        except RuntimeError:
            # A dispatch racing stop(): the pool rejected the job.
            raise ServingError("frontend is stopping")

    async def _backend_call(self, method: str, *args):
        loop = asyncio.get_running_loop()
        function = getattr(self.backend, method)
        async with self._lock:
            return await self._run_in_executor(loop, function, *args)

    # -- the drain task -------------------------------------------------- #

    async def _drain_loop(self) -> None:
        """Poll the backend whenever kicked, else every ``drain_interval``.

        ``poll`` respects the backend's micro-batch window, so calling it on
        every kick never over-drains; the interval tick catches windows that
        close by the time bound with no new traffic.
        """
        while self._running:
            try:
                await asyncio.wait_for(self._kick.wait(), timeout=self.drain_interval)
            except asyncio.TimeoutError:
                pass
            self._kick.clear()
            await self._drain_once("poll")

    async def _drain_once(self, method: str) -> int:
        try:
            responses = await self._backend_call(method)
        except ServingError as exc:
            self._notify_drain_failure(exc)
            return 0
        self._route(responses)
        return len(responses)

    def _route(self, responses) -> None:
        """Deliver one drain's responses, batched per connection.

        All of a connection's responses from this drain leave as **one**
        transport write — a single v2 ``quote_result_batch`` frame on an
        upgraded connection, one contiguous buffer of v1 frames otherwise.
        """
        by_connection: Dict[_Connection, List[dict]] = {}
        for response in responses:
            connection, client_id = self._waiters.pop(response.quote_id, (None, None))
            if connection is None:
                continue
            connection.outstanding.discard(response.quote_id)
            payload = response_to_payload(response)
            if client_id is not None:
                payload["id"] = client_id
            by_connection.setdefault(connection, []).append(payload)
        for connection, payloads in by_connection.items():
            self.wire_stats.response_batch.record(len(payloads))
            self._write_many(connection, payloads)

    def _notify_drain_failure(self, exc: ServingError) -> None:
        """Fan a drain failure out to the connections it affects.

        Lost quotes get an ``error`` frame (they will never be served);
        requeued quotes stay registered — their responses arrive on a later
        drain.  A response the error carries (synchronous-path hand-over)
        is routed normally.
        """
        if exc.response is not None:
            self._route([exc.response])
        for quote_id in exc.lost_quote_ids:
            connection, client_id = self._waiters.pop(quote_id, (None, None))
            if connection is None:
                continue
            connection.outstanding.discard(quote_id)
            payload = {
                "op": "error",
                "code": "drain",
                "error": str(exc),
                "quote_id": quote_id,
                "lost_quote_ids": list(exc.lost_quote_ids),
            }
            if client_id is not None:
                payload["id"] = client_id
            self._write(connection, payload)

    # -- writes (never await a slow reader) ------------------------------ #

    def _write_raw(
        self, connection: _Connection, data: bytes, v1_frames: int = 0, v2_frames: int = 0
    ) -> None:
        """Write one pre-encoded buffer without ever awaiting a slow reader.

        ``StreamWriter.drain()`` would block the drain task behind a client
        that stopped consuming; instead the write buffer is inspected after
        every write, and a connection holding more than
        ``max_write_buffer_bytes`` is aborted — its memory cost is bounded
        and the drain task never stalls.
        """
        writer = connection.writer
        if connection.aborted or writer.is_closing():
            return
        try:
            writer.write(data)
        except (ConnectionResetError, BrokenPipeError, OSError):
            return
        self.wire_stats.bytes_out += len(data)
        self.wire_stats.frames_out_v1 += v1_frames
        self.wire_stats.frames_out_v2 += v2_frames
        if writer.transport.get_write_buffer_size() > self.max_write_buffer_bytes:
            self._abort_slow_reader(connection)

    def _write(self, connection: _Connection, payload: dict) -> None:
        """Write one JSON frame (housekeeping, errors, v1 responses)."""
        self._write_raw(connection, encode_frame(payload), v1_frames=1)

    def _write_many(self, connection: _Connection, payloads: Sequence[dict]) -> None:
        """Write one tick's response payloads as a single transport buffer.

        On a v2 connection the homogeneous hot payloads collapse into
        columnar batch frames (``quote_result_batch`` for tagged results,
        ``feedback_ok_batch`` for tagged acks — v2 clients correlate by
        tag, so regrouping is safe); everything else stays JSON.  On a v1
        connection every payload is a JSON frame, concatenated into one
        buffer in exactly the given order (tagless v1 clients rely on frame
        order).
        """
        if not payloads:
            return
        if connection.wire_version >= WIRE_V2:
            results = []
            ok_tags = []
            rest = []
            for payload in payloads:
                op = payload.get("op")
                if op == "quote_result" and payload.get("id") is not None:
                    results.append(payload)
                elif op == "feedback_ok" and payload.get("id") is not None:
                    ok_tags.append(payload["id"])
                else:
                    rest.append(payload)
            buffers = []
            v2_frames = 0
            if results:
                buffers.append(encode_quote_result_batch(results))
                v2_frames += 1
            if ok_tags:
                buffers.append(encode_feedback_ok_batch(ok_tags))
                v2_frames += 1
            if rest:
                buffers.append(encode_frames(rest))
            self._write_raw(
                connection, b"".join(buffers), v1_frames=len(rest), v2_frames=v2_frames
            )
        else:
            self._write_raw(connection, encode_frames(payloads), v1_frames=len(payloads))

    def _abort_slow_reader(self, connection: _Connection) -> None:
        connection.aborted = True
        self.stats.slow_reader_disconnects += 1
        self._forget_connection_waiters(connection)
        try:
            connection.writer.transport.abort()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    def _forget_connection_waiters(self, connection: _Connection) -> None:
        """Drop every waiter registered by one connection (gone or aborted).

        The backend still serves the underlying quotes; their responses find
        no waiter and are discarded by :meth:`_route` — nothing leaks, and
        nothing is double-served.
        """
        for quote_id in connection.outstanding:
            self._waiters.pop(quote_id, None)
        connection.outstanding.clear()

    # -- per-connection protocol ---------------------------------------- #

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        connection = _Connection(writer=writer)
        self._connections.add(connection)
        self.stats.connections_opened += 1
        decoder = FrameDecoder(on_frame=self._count_frame_in)
        try:
            while True:
                try:
                    chunk = await reader.read(READ_CHUNK_BYTES)
                except OSError:
                    # A failed response write poisons the stream reader with
                    # the same BrokenPipeError — treat as EOF, not a crash.
                    break
                if not chunk or connection.aborted:
                    break
                try:
                    frames = decoder.feed(chunk)
                except ServingError as exc:
                    # Oversized header or undecodable body: the stream is no
                    # longer at a frame boundary — report and hang up.
                    self._write(
                        connection, {"op": "error", "code": "protocol", "error": str(exc)}
                    )
                    break
                if frames:
                    await self._dispatch_tick(frames, connection)
        finally:
            self._connections.discard(connection)
            self.stats.connections_closed += 1
            # Mid-flight disconnect: the client is gone, so nobody will ever
            # read its responses — unregister them or the waiter map grows
            # by every abandoned quote.
            self._forget_connection_waiters(connection)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    def _count_frame_in(self, version: int, nbytes: int) -> None:
        self.wire_stats.bytes_in += nbytes
        if version >= WIRE_V2:
            self.wire_stats.frames_in_v2 += 1
        else:
            self.wire_stats.frames_in_v1 += 1

    async def _dispatch_tick(self, frames: List[dict], connection: _Connection) -> None:
        """Dispatch every frame parsed in one event-loop tick, coalesced.

        Batch frames are expanded to their items; consecutive runs of the
        same hot kind (``quote`` / ``feedback``) become one batched backend
        call each.  Adjacent-run coalescing preserves the connection's
        operation order exactly — a feedback between two quotes still
        applies between them.
        """
        self.wire_stats.ticks += 1
        self.wire_stats.frames_per_tick.record(len(frames))
        ops: List[Tuple[str, dict]] = []
        for frame in frames:
            # A valid-JSON body need not be an object; surface junk as an
            # unknown-op error instead of crashing the handler.
            if not isinstance(frame, dict):
                ops.append(("other", {"op": frame}))
                continue
            op = frame.get("op")
            if op in ("quote_batch", "feedback_batch"):
                kind = "quote" if op == "quote_batch" else "feedback"
                for item in frame.get("items") or []:
                    if isinstance(item, dict):
                        ops.append((kind, item))
                    else:
                        ops.append(("other", {"op": item}))
            elif op in ("quote", "feedback"):
                ops.append((op, frame))
            else:
                ops.append(("other", frame))
        index = 0
        while index < len(ops):
            kind = ops[index][0]
            end = index + 1
            if kind in ("quote", "feedback"):
                while end < len(ops) and ops[end][0] == kind:
                    end += 1
            group = [payload for _kind, payload in ops[index:end]]
            if kind == "quote":
                await self._dispatch_quotes(group, connection)
            elif kind == "feedback":
                await self._dispatch_feedbacks(group, connection)
            else:
                await self._dispatch(group[0], connection)
            index = end

    def _admit_quote(
        self, connection: _Connection, admitted_in_batch: int = 0
    ) -> Optional[str]:
        """The backpressure gate; a rejection reason, or ``None`` to admit.

        Called with the backend lock held (atomic with the submit and the
        waiter registration).  ``admitted_in_batch`` counts quotes admitted
        earlier in the same coalesced batch — they have not been registered
        yet, but they will be, so the bounds stay exact: the waiter map can
        never exceed ``max_waiters``, provably.
        """
        if len(self._waiters) + admitted_in_batch >= self.max_waiters:
            self.stats.rejected_waiter_map += 1
            return "waiter map full (%d quotes in flight, bound %d)" % (
                len(self._waiters) + admitted_in_batch,
                self.max_waiters,
            )
        if (
            len(connection.outstanding) + admitted_in_batch
            >= self.max_outstanding_per_connection
        ):
            self.stats.rejected_connection_budget += 1
            return "connection budget exhausted (%d outstanding, bound %d)" % (
                len(connection.outstanding) + admitted_in_batch,
                self.max_outstanding_per_connection,
            )
        return None

    async def _dispatch_quotes(
        self, items: Sequence[dict], connection: _Connection
    ) -> None:
        """Admit, submit, and register one coalesced run of quotes.

        One lock acquisition and one executor hop (``submit_many``) for the
        whole run.  Admission is checked per quote under the lock, counting
        the quotes admitted earlier in this batch, so the backpressure
        bounds hold exactly as they do for per-frame dispatch.
        """
        out: List[dict] = []
        parsed: List[Tuple[Any, QuoteRequest]] = []
        for item in items:
            tag = item.get("id")
            try:
                parsed.append((tag, request_from_payload(item)))
            except (ServingError, TypeError, ValueError) as exc:
                out.append({"op": "error", "error": str(exc), "id": tag})
        admitted: List[Tuple[Any, QuoteRequest]] = []
        if parsed:
            loop = asyncio.get_running_loop()
            # Registering the waiters must be atomic with the submit w.r.t.
            # the drain task's poll (both hold the backend lock), or a drain
            # racing in between could produce a response before anyone is
            # listening for it.
            async with self._lock:
                for tag, request in parsed:
                    rejection = self._admit_quote(connection, len(admitted))
                    if rejection is not None:
                        out.append(
                            {
                                "op": "error",
                                "code": "backpressure",
                                "error": "quote rejected: %s" % rejection,
                                "id": tag,
                            }
                        )
                        continue
                    admitted.append((tag, request))
                if admitted:
                    requests = [request for _tag, request in admitted]
                    self.wire_stats.submit_batch.record(len(requests))
                    try:
                        quote_ids = await self._submit_many(loop, requests)
                    except (ServingError, TypeError, ValueError) as exc:
                        # A sharded backend reports partial failure with the
                        # per-position ids it *did* enqueue (None = never
                        # enqueued).  Those quotes will be served — register
                        # their waiters; answering them with errors here
                        # would orphan their responses and strand their
                        # decisions pending forever on healthy workers.
                        partial = getattr(exc, "submitted_quote_ids", None)
                        if partial is None or not self._running:
                            partial = [None] * len(admitted)
                        survivors = []
                        for (tag, request), quote_id in zip(admitted, partial):
                            if quote_id is None:
                                out.append(
                                    {"op": "error", "error": str(exc), "id": tag}
                                )
                                continue
                            self._waiters[quote_id] = (connection, tag)
                            connection.outstanding.add(quote_id)
                            survivors.append((tag, request))
                        if survivors:
                            self.stats.peak_waiters = max(
                                self.stats.peak_waiters, len(self._waiters)
                            )
                        admitted = survivors
                    else:
                        # A stop() racing this submit has already cleared
                        # the waiter map; registering now would leak the
                        # entries forever (nothing routes after shutdown).
                        if self._running:
                            for (tag, _request), quote_id in zip(admitted, quote_ids):
                                self._waiters[quote_id] = (connection, tag)
                                connection.outstanding.add(quote_id)
                            self.stats.peak_waiters = max(
                                self.stats.peak_waiters, len(self._waiters)
                            )
        if out:
            self._write_many(connection, out)
        if admitted:
            self._kick.set()

    async def _submit_many(self, loop, requests: List[QuoteRequest]) -> List[int]:
        """One executor hop enqueueing a batch (lock already held)."""
        submit_many = getattr(self.backend, "submit_many", None)
        if submit_many is not None:
            return await self._run_in_executor(loop, submit_many, requests)
        submit = self.backend.submit
        return await self._run_in_executor(
            loop, lambda: [submit(request) for request in requests]
        )

    async def _dispatch_feedbacks(
        self, items: Sequence[dict], connection: _Connection
    ) -> None:
        """Apply one coalesced run of feedback events in one executor hop.

        ``feedback_many`` returns per-event outcomes, so each event is
        acknowledged (``feedback_ok``) or answered with its own ``error``
        frame — the same observable granularity as per-frame dispatch.
        """
        out: List[dict] = []
        events: List[Tuple[Any, FeedbackEvent]] = []
        for item in items:
            tag = item.get("id")
            try:
                event = FeedbackEvent(
                    key=SessionKey(
                        app=str(item["app"]), segment=str(item["segment"])
                    ),
                    quote_id=int(item["quote_id"]),
                    accepted=bool(item["accepted"]),
                )
            except KeyError as exc:
                out.append(
                    {"op": "error", "error": "missing field %s" % exc, "id": tag}
                )
                continue
            except (TypeError, ValueError) as exc:
                out.append({"op": "error", "error": str(exc), "id": tag})
                continue
            events.append((tag, event))
        if events:
            self.wire_stats.feedback_batch.record(len(events))
            try:
                outcomes = await self._feedback_many([event for _tag, event in events])
            except ServingError as exc:
                outcomes = [exc] * len(events)
            for (tag, _event), outcome in zip(events, outcomes):
                if outcome is None:
                    out.append({"op": "feedback_ok", "id": tag})
                else:
                    out.append({"op": "error", "error": str(outcome), "id": tag})
        self._write_many(connection, out)

    async def _feedback_many(self, events: List[FeedbackEvent]) -> List:
        """One executor hop applying a feedback window; per-event outcomes."""
        loop = asyncio.get_running_loop()
        feedback_many = getattr(self.backend, "feedback_many", None)
        async with self._lock:
            if feedback_many is not None:
                return await self._run_in_executor(loop, feedback_many, events)
            feedback_batch = self.backend.feedback_batch

            def _fallback():
                outcomes = []
                for event in events:
                    try:
                        feedback_batch([event])
                        outcomes.append(None)
                    except (ServingError, TypeError, ValueError) as exc:
                        outcomes.append(exc)
                return outcomes

            return await self._run_in_executor(loop, _fallback)

    async def _dispatch(self, message: dict, connection: _Connection) -> None:
        """Housekeeping operations (one frame each; never coalesced)."""
        op = message.get("op")
        client_id = message.get("id")
        try:
            if op == "hello":
                requested = message.get("wire", WIRE_V1)
                agreed = WIRE_V2 if int(requested) >= WIRE_V2 else WIRE_V1
                connection.wire_version = agreed
                self._write(
                    connection, {"op": "hello_ok", "wire": agreed, "id": client_id}
                )
            elif op == "flush":
                drained = await self._drain_once("flush")
                self._write(
                    connection, {"op": "flush_ok", "drained": drained, "id": client_id}
                )
            elif op == "stats":
                payload = await self._collect_stats()
                payload.update({"op": "stats", "id": client_id})
                self._write(connection, payload)
            elif op == "ping":
                self._write(connection, {"op": "pong", "id": client_id})
            else:
                raise ServingError("unknown op %r" % (op,))
        except KeyError as exc:
            self._write(
                connection,
                {"op": "error", "error": "missing field %s" % exc, "id": client_id},
            )
        except (ServingError, TypeError, ValueError) as exc:
            # TypeError/ValueError cover malformed field values: answer with
            # an error frame instead of killing the connection mid-protocol.
            self._write(connection, {"op": "error", "error": str(exc), "id": client_id})

    def frontend_stats(self) -> dict:
        """The frontend's own gauges, counters, and configured bounds."""
        return {
            "waiters": len(self._waiters),
            "peak_waiters": self.stats.peak_waiters,
            "connections_open": len(self._connections),
            "connections_opened": self.stats.connections_opened,
            "connections_closed": self.stats.connections_closed,
            "rejected_waiter_map": self.stats.rejected_waiter_map,
            "rejected_connection_budget": self.stats.rejected_connection_budget,
            "rejected": self.stats.rejected,
            "slow_reader_disconnects": self.stats.slow_reader_disconnects,
            "wire": self.wire_stats.as_dict(),
            "limits": {
                "max_waiters": self.max_waiters,
                "max_outstanding_per_connection": self.max_outstanding_per_connection,
                "max_write_buffer_bytes": self.max_write_buffer_bytes,
            },
        }

    async def _collect_stats(self) -> dict:
        backend = self.backend
        if hasattr(backend, "stats") and callable(backend.stats):
            # ShardedRegistry: its aggregate block flows through verbatim
            # (minus the bulky per-shard detail) — including the
            # ``rebalance`` block (sessions moved, parked/replayed quote
            # counts, quiesce-time percentiles) and the ``routing`` block
            # (table version, hash divisor, live overrides), so stats-frame
            # consumers can watch an online migration progress without a
            # side channel.  Quotes submitted for a session mid-move are
            # parked by the backend and replayed on the target shard under
            # their already-issued ids, so the frontend's waiter map needs
            # no special casing — responses arrive under the ids it waited
            # on, and no quote is ever lost to a migration.
            stats = await self._backend_call("stats")
            stats.pop("per_shard", None)
            payload = dict(stats)
        else:
            # QuoteService: dataclass counters + its registry.
            payload = {
                "quotes_served": backend.stats.quotes_served,
                "drains": backend.stats.drains,
                "batched_proposals": backend.stats.batched_proposals,
                "feedback_applied": backend.stats.feedback_applied,
                "latency": backend.stats.latency_summary().as_dict(),
                "sessions_resident": backend.registry.resident_count,
                "registry": backend.registry.stats.as_dict(),
            }
        payload["frontend"] = self.frontend_stats()
        return payload


# --------------------------------------------------------------------------- #
# Background-thread harness (examples, tests, the bench)
# --------------------------------------------------------------------------- #


@dataclass
class FrontendHandle:
    """A running frontend on its own event-loop thread."""

    frontend: QuoteFrontend
    thread: threading.Thread
    loop: asyncio.AbstractEventLoop
    address: Any

    def stop(self, timeout: float = 5.0) -> None:
        future = asyncio.run_coroutine_threadsafe(self.frontend.stop(), self.loop)
        future.result(timeout)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout)

    def __enter__(self) -> "FrontendHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_frontend_thread(
    backend,
    host: Optional[str] = None,
    port: int = 0,
    unix_path: Optional[str] = None,
    drain_interval: float = 0.001,
    startup_timeout: float = 10.0,
    **frontend_options,
) -> FrontendHandle:
    """Run a :class:`QuoteFrontend` on a daemon thread; returns its handle.

    The handle's ``address`` is the bound unix path, or the ``(host, port)``
    actually bound (so ``port=0`` works for tests).  Extra keyword arguments
    (``max_waiters``, ``max_outstanding_per_connection``,
    ``max_write_buffer_bytes``) are forwarded to :class:`QuoteFrontend`.
    """
    frontend = QuoteFrontend(backend, drain_interval=drain_interval, **frontend_options)
    started = threading.Event()
    failure: List[BaseException] = []
    loop_holder: List[asyncio.AbstractEventLoop] = []

    def _run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        loop_holder.append(loop)

        async def _start() -> None:
            await frontend.start(host=host, port=port, unix_path=unix_path)

        try:
            loop.run_until_complete(_start())
        except BaseException as exc:  # surface bind errors to the caller
            failure.append(exc)
            started.set()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(target=_run, name="quote-frontend", daemon=True)
    thread.start()
    if not started.wait(startup_timeout):
        raise ServingError("frontend failed to start within %gs" % startup_timeout)
    if failure:
        raise failure[0]
    address = unix_path if unix_path is not None else frontend.addresses[0]
    return FrontendHandle(
        frontend=frontend, thread=thread, loop=loop_holder[0], address=address
    )


# --------------------------------------------------------------------------- #
# Synchronous client
# --------------------------------------------------------------------------- #


class QuoteSocketClient:
    """Blocking client speaking the frontend protocol (JSON v1 by default).

    One outstanding request at a time per client: frames on a connection are
    ordered, so after a ``quote`` the next ``quote_result``/``error`` frame
    answers it.  For concurrent traffic open several clients (the server
    multiplexes connections).

    Pass ``wire=2`` to negotiate the binary v2 protocol: quotes and
    feedback then travel as columnar batch frames (of one item each on this
    single-outstanding client) and responses arrive as v2 batches.  Against
    an old server the ``hello`` is answered with an ``error`` frame and the
    client silently stays on v1.
    """

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        unix_path: Optional[str] = None,
        timeout: float = 30.0,
        wire: int = WIRE_V1,
    ) -> None:
        if (unix_path is None) == (host is None) or (
            unix_path is None and port is None
        ):
            raise ValueError("pass exactly one of host/port or unix_path")
        if unix_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(unix_path)
        else:
            self._sock = socket.create_connection((host, int(port)), timeout=timeout)
        self._decoder = FrameDecoder()
        self._frames: "deque[dict]" = deque()
        self._next_tag = 0
        self.wire = WIRE_V1
        if wire >= WIRE_V2:
            self._negotiate(wire)

    # -- framing -------------------------------------------------------- #

    def _send(self, payload: dict) -> None:
        self._sock.sendall(encode_frame(payload))

    def _tag(self) -> int:
        self._next_tag += 1
        return self._next_tag

    def _negotiate(self, version: int) -> None:
        self._send({"op": "hello", "wire": int(version)})
        frame = self.read_frame()
        if frame.get("op") == "hello_ok":
            self.wire = int(frame.get("wire", WIRE_V1))
        # An error frame (old server): stay on v1 — every op still works.

    def read_frame(self) -> dict:
        while not self._frames:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ServingError("server closed the connection mid-frame")
            for frame in self._decoder.feed(chunk):
                if frame.get("op") in ("quote_result_batch", "feedback_ok_batch"):
                    self._frames.extend(frame["items"])
                else:
                    self._frames.append(frame)
        return self._frames.popleft()

    def _expect(self, op: str) -> dict:
        frame = self.read_frame()
        if frame.get("op") == "error":
            raise error_from_frame(frame)
        if frame.get("op") != op:
            raise ServingError("expected %r frame, got %r" % (op, frame.get("op")))
        return frame

    # -- operations ----------------------------------------------------- #

    def quote(self, key: SessionKey, features, reserve: Optional[float] = None) -> dict:
        """Request one quote and block until its result frame arrives."""
        payload = {
            "op": "quote",
            "app": key.app,
            "segment": key.segment,
            "features": [float(value) for value in np.asarray(features, dtype=float)],
            "reserve": None if reserve is None else float(reserve),
        }
        if self.wire >= WIRE_V2:
            payload["id"] = self._tag()
            self._sock.sendall(encode_quote_batch([payload]))
        else:
            self._send(payload)
        return self._expect("quote_result")

    def feedback(self, key: SessionKey, quote_id: int, accepted: bool) -> None:
        payload = {
            "op": "feedback",
            "app": key.app,
            "segment": key.segment,
            "quote_id": int(quote_id),
            "accepted": bool(accepted),
        }
        if self.wire >= WIRE_V2:
            payload["id"] = self._tag()
            self._sock.sendall(encode_feedback_batch([payload]))
        else:
            self._send(payload)
        self._expect("feedback_ok")

    def flush(self) -> int:
        self._send({"op": "flush"})
        return int(self._expect("flush_ok")["drained"])

    def stats(self) -> dict:
        self._send({"op": "stats"})
        return self._expect("stats")

    def ping(self) -> None:
        self._send({"op": "ping"})
        self._expect("pong")

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "QuoteSocketClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# --------------------------------------------------------------------------- #
# Closed-loop replay through the socket
# --------------------------------------------------------------------------- #


def serve_closed_loop_socket(
    client: QuoteSocketClient,
    key: SessionKey,
    materialized: MaterializedArrivals,
    pricer_name: Optional[str] = None,
) -> SimulationResult:
    """Drive one session through a materialised market *over the socket*.

    The socket twin of :func:`repro.serving.loop.serve_closed_loop`: one
    quote per round, the sale settled against the realised market value with
    the same scalar comparison, feedback applied before the next round.
    Because both wire formats round-trip floats exactly (shortest-repr JSON
    on v1, raw IEEE doubles on v2) and the backend drives the same
    propose/update protocol, the resulting transcript is bit-identical to
    the offline engine — through the socket *and* (with a sharded backend)
    through a process boundary.
    """
    transcript = Transcript.for_materialized(materialized)
    for round_ in stream_rounds(materialized):
        result = client.quote(key, round_.features, reserve=round_.reserve)
        sold = settle_frame_into_transcript(
            transcript, round_.index, result, round_.market_value
        )
        client.feedback(key, result["quote_id"], sold)
    transcript.finalize_regrets()
    return SimulationResult(
        pricer_name=pricer_name if pricer_name is not None else str(key),
        transcript=transcript,
    )
