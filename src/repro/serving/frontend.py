"""Asyncio socket front end for the quote-serving subsystem.

:class:`QuoteFrontend` exposes a :class:`~repro.serving.service.QuoteService`
(or a :class:`~repro.serving.sharding.ShardedRegistry`) over TCP or a unix
domain socket.  The wire format is **length-prefixed JSON**: every frame is a
4-byte big-endian unsigned length followed by that many bytes of UTF-8 JSON.
Python's ``json`` emits shortest round-trip ``repr`` floats, so prices and
features survive the wire bit-exactly — which is what lets a closed-loop
replay *through the socket* stay bit-identical to the offline engine
(pinned by ``tests/serving/test_frontend.py`` for every golden family).

Client → server operations (``op`` field):

=============  =============================================================
``quote``      ``{app, segment, features: [..], reserve: x|null, id?}`` —
               enqueue a quote; the response frame arrives when the
               micro-batch window drains (``op: quote_result``, echoing
               the optional client-chosen ``id``).
``feedback``   ``{app, segment, quote_id, accepted}`` → ``feedback_ok``.
``flush``      force a drain → ``{op: flush_ok, drained: n}`` (quote
               results still go to their issuing connections).
``stats``      service/registry counters → ``{op: stats, ...}``.
``ping``       liveness → ``{op: pong}``.
=============  =============================================================

Failures arrive as ``{op: error, error: msg, id?, lost_quote_ids: [..]}``;
a drain failure notifies every connection whose quote was lost or requeued.

The server drives the backend from a single **drain task**: every submit
kicks it, and it otherwise ticks at ``drain_interval`` so the time bound of
the micro-batch window fires without traffic.  All backend access is
serialised behind one lock and pushed off the event loop via
``run_in_executor``, so a slow pricer (or a shard pipe round-trip) never
stalls frame parsing.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.engine.arrivals import MaterializedArrivals
from repro.engine.results import SimulationResult
from repro.engine.streaming import stream_rounds
from repro.engine.transcript import Transcript
from repro.exceptions import ServingError
from repro.serving.requests import FeedbackEvent, QuoteRequest, QuoteResponse, SessionKey

#: Frame header: one 4-byte big-endian unsigned length.
FRAME_HEADER = struct.Struct(">I")

#: Upper bound on a single frame (defensive: a corrupt header must not OOM).
MAX_FRAME_BYTES = 16 * 1024 * 1024


# --------------------------------------------------------------------------- #
# Framing and payload codecs (shared by server and clients)
# --------------------------------------------------------------------------- #


def encode_frame(payload: dict) -> bytes:
    """One length-prefixed JSON frame."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ServingError("frame of %d bytes exceeds the %d-byte bound"
                           % (len(body), MAX_FRAME_BYTES))
    return FRAME_HEADER.pack(len(body)) + body


async def read_frame(reader: asyncio.StreamReader) -> Optional[dict]:
    """Read one frame; ``None`` on a clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(FRAME_HEADER.size)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    (length,) = FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ServingError("frame length %d exceeds the %d-byte bound"
                           % (length, MAX_FRAME_BYTES))
    body = await reader.readexactly(length)
    return json.loads(body.decode("utf-8"))


def request_from_payload(payload: dict) -> QuoteRequest:
    """Decode a ``quote`` frame into a :class:`QuoteRequest`."""
    try:
        key = SessionKey(app=str(payload["app"]), segment=str(payload["segment"]))
        features = np.asarray(payload["features"], dtype=float)
    except (KeyError, TypeError, ValueError) as exc:
        raise ServingError("malformed quote payload: %s" % exc)
    reserve = payload.get("reserve")
    return QuoteRequest(
        key=key,
        features=features,
        reserve=None if reserve is None else float(reserve),
        metadata=dict(payload.get("metadata") or {}),
    )


def response_to_payload(response: QuoteResponse) -> dict:
    """Encode a :class:`QuoteResponse` as a ``quote_result`` frame body."""
    return {
        "op": "quote_result",
        "quote_id": response.quote_id,
        "app": response.key.app,
        "segment": response.key.segment,
        "link_price": response.link_price,
        "posted_price": response.posted_price,
        "exploratory": bool(response.exploratory),
        "skipped": bool(response.skipped),
        "round_index": int(response.round_index),
        "latency_seconds": response.latency_seconds,
    }


# --------------------------------------------------------------------------- #
# Server
# --------------------------------------------------------------------------- #


class QuoteFrontend:
    """Length-prefixed-JSON socket server over a quote-serving backend.

    ``backend`` is anything with the service surface this module drives:
    ``submit(request) -> quote_id``, ``poll() -> [QuoteResponse]``,
    ``flush() -> [QuoteResponse]``, ``feedback_batch(events)`` — i.e. a
    :class:`QuoteService` or a :class:`ShardedRegistry`.
    """

    def __init__(self, backend, drain_interval: float = 0.001) -> None:
        if drain_interval <= 0:
            raise ValueError("drain_interval must be positive, got %g" % drain_interval)
        self.backend = backend
        self.drain_interval = drain_interval
        self._lock = asyncio.Lock()
        self._kick = asyncio.Event()
        self._waiters: Dict[int, Tuple[asyncio.StreamWriter, Any]] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._drain_task: Optional[asyncio.Task] = None
        self._running = False

    # -- lifecycle ------------------------------------------------------ #

    async def start(
        self,
        host: Optional[str] = None,
        port: int = 0,
        unix_path: Optional[str] = None,
    ) -> None:
        """Bind and start serving on TCP ``host:port`` or ``unix_path``."""
        if self._server is not None:
            raise ServingError("frontend already started")
        if (unix_path is None) == (host is None):
            raise ValueError("pass exactly one of host/port or unix_path")
        self._running = True
        if unix_path is not None:
            self._server = await asyncio.start_unix_server(self._handle, path=unix_path)
        else:
            self._server = await asyncio.start_server(self._handle, host=host, port=port)
        self._drain_task = asyncio.get_running_loop().create_task(self._drain_loop())

    @property
    def addresses(self) -> List:
        """Bound socket addresses (``(host, port)`` tuples or unix paths)."""
        if self._server is None:
            return []
        return [sock.getsockname() for sock in self._server.sockets]

    async def stop(self) -> None:
        """Stop accepting, cancel the drain task, flush nothing."""
        self._running = False
        if self._drain_task is not None:
            self._kick.set()
            self._drain_task.cancel()
            try:
                await self._drain_task
            except asyncio.CancelledError:
                pass
            self._drain_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- backend access (serialised, off-loop) -------------------------- #

    async def _backend_call(self, method: str, *args):
        loop = asyncio.get_running_loop()
        function = getattr(self.backend, method)
        async with self._lock:
            return await loop.run_in_executor(None, function, *args)

    # -- the drain task -------------------------------------------------- #

    async def _drain_loop(self) -> None:
        """Poll the backend whenever kicked, else every ``drain_interval``.

        ``poll`` respects the backend's micro-batch window, so calling it on
        every kick never over-drains; the interval tick catches windows that
        close by the time bound with no new traffic.
        """
        while self._running:
            try:
                await asyncio.wait_for(self._kick.wait(), timeout=self.drain_interval)
            except asyncio.TimeoutError:
                pass
            self._kick.clear()
            await self._drain_once("poll")

    async def _drain_once(self, method: str) -> int:
        try:
            responses = await self._backend_call(method)
        except ServingError as exc:
            await self._notify_drain_failure(exc)
            return 0
        await self._route(responses)
        return len(responses)

    async def _route(self, responses) -> None:
        for response in responses:
            writer, client_id = self._waiters.pop(response.quote_id, (None, None))
            if writer is None or writer.is_closing():
                continue
            payload = response_to_payload(response)
            if client_id is not None:
                payload["id"] = client_id
            await self._write(writer, payload)

    async def _notify_drain_failure(self, exc: ServingError) -> None:
        """Fan a drain failure out to the connections it affects.

        Lost quotes get an ``error`` frame (they will never be served);
        requeued quotes stay registered — their responses arrive on a later
        drain.  A response the error carries (synchronous-path hand-over)
        is routed normally.
        """
        if exc.response is not None:
            await self._route([exc.response])
        for quote_id in exc.lost_quote_ids:
            writer, client_id = self._waiters.pop(quote_id, (None, None))
            if writer is None or writer.is_closing():
                continue
            payload = {
                "op": "error",
                "error": str(exc),
                "quote_id": quote_id,
                "lost_quote_ids": list(exc.lost_quote_ids),
            }
            if client_id is not None:
                payload["id"] = client_id
            await self._write(writer, payload)

    @staticmethod
    async def _write(writer: asyncio.StreamWriter, payload: dict) -> None:
        try:
            writer.write(encode_frame(payload))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass

    # -- per-connection protocol ---------------------------------------- #

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    message = await read_frame(reader)
                except (ServingError, ValueError) as exc:
                    # Oversized header or undecodable JSON: the stream is no
                    # longer at a frame boundary — report and hang up.
                    await self._write(writer, {"op": "error", "error": str(exc)})
                    break
                if message is None:
                    break
                await self._dispatch(message, writer)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _dispatch(self, message: dict, writer: asyncio.StreamWriter) -> None:
        op = message.get("op")
        client_id = message.get("id")
        try:
            if op == "quote":
                request = request_from_payload(message)
                # Registering the waiter must be atomic with the submit
                # w.r.t. the drain task's poll (both hold the backend lock),
                # or a drain racing in between could produce the response
                # before anyone is listening for it.
                loop = asyncio.get_running_loop()
                async with self._lock:
                    quote_id = await loop.run_in_executor(
                        None, self.backend.submit, request
                    )
                    self._waiters[quote_id] = (writer, client_id)
                self._kick.set()
            elif op == "feedback":
                event = FeedbackEvent(
                    key=SessionKey(
                        app=str(message["app"]), segment=str(message["segment"])
                    ),
                    quote_id=int(message["quote_id"]),
                    accepted=bool(message["accepted"]),
                )
                await self._backend_call("feedback_batch", [event])
                await self._write(writer, {"op": "feedback_ok", "id": client_id})
            elif op == "flush":
                drained = await self._drain_once("flush")
                await self._write(writer, {"op": "flush_ok", "drained": drained, "id": client_id})
            elif op == "stats":
                payload = await self._collect_stats()
                payload.update({"op": "stats", "id": client_id})
                await self._write(writer, payload)
            elif op == "ping":
                await self._write(writer, {"op": "pong", "id": client_id})
            else:
                raise ServingError("unknown op %r" % (op,))
        except KeyError as exc:
            await self._write(
                writer,
                {"op": "error", "error": "missing field %s" % exc, "id": client_id},
            )
        except (ServingError, TypeError, ValueError) as exc:
            # TypeError/ValueError cover malformed field values (a null
            # quote_id, a string where a number belongs): answer with an
            # error frame instead of killing the connection mid-protocol.
            await self._write(writer, {"op": "error", "error": str(exc), "id": client_id})

    async def _collect_stats(self) -> dict:
        backend = self.backend
        if hasattr(backend, "stats") and callable(backend.stats):
            stats = await self._backend_call("stats")  # ShardedRegistry
            stats.pop("per_shard", None)
            return dict(stats)
        # QuoteService: dataclass counters + its registry.
        return {
            "quotes_served": backend.stats.quotes_served,
            "drains": backend.stats.drains,
            "batched_proposals": backend.stats.batched_proposals,
            "feedback_applied": backend.stats.feedback_applied,
            "latency": backend.stats.latency_summary().as_dict(),
            "sessions_resident": backend.registry.resident_count,
            "registry": backend.registry.stats.as_dict(),
        }


# --------------------------------------------------------------------------- #
# Background-thread harness (examples, tests, the bench)
# --------------------------------------------------------------------------- #


@dataclass
class FrontendHandle:
    """A running frontend on its own event-loop thread."""

    frontend: QuoteFrontend
    thread: threading.Thread
    loop: asyncio.AbstractEventLoop
    address: Any

    def stop(self, timeout: float = 5.0) -> None:
        future = asyncio.run_coroutine_threadsafe(self.frontend.stop(), self.loop)
        future.result(timeout)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout)

    def __enter__(self) -> "FrontendHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_frontend_thread(
    backend,
    host: Optional[str] = None,
    port: int = 0,
    unix_path: Optional[str] = None,
    drain_interval: float = 0.001,
    startup_timeout: float = 10.0,
) -> FrontendHandle:
    """Run a :class:`QuoteFrontend` on a daemon thread; returns its handle.

    The handle's ``address`` is the bound unix path, or the ``(host, port)``
    actually bound (so ``port=0`` works for tests).
    """
    frontend = QuoteFrontend(backend, drain_interval=drain_interval)
    started = threading.Event()
    failure: List[BaseException] = []
    loop_holder: List[asyncio.AbstractEventLoop] = []

    def _run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        loop_holder.append(loop)

        async def _start() -> None:
            await frontend.start(host=host, port=port, unix_path=unix_path)

        try:
            loop.run_until_complete(_start())
        except BaseException as exc:  # surface bind errors to the caller
            failure.append(exc)
            started.set()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(target=_run, name="quote-frontend", daemon=True)
    thread.start()
    if not started.wait(startup_timeout):
        raise ServingError("frontend failed to start within %gs" % startup_timeout)
    if failure:
        raise failure[0]
    address = unix_path if unix_path is not None else frontend.addresses[0]
    return FrontendHandle(
        frontend=frontend, thread=thread, loop=loop_holder[0], address=address
    )


# --------------------------------------------------------------------------- #
# Synchronous client
# --------------------------------------------------------------------------- #


class QuoteSocketClient:
    """Blocking client speaking the length-prefixed JSON protocol.

    One outstanding request at a time per client: frames on a connection are
    ordered, so after a ``quote`` the next ``quote_result``/``error`` frame
    answers it.  For concurrent traffic open several clients (the server
    multiplexes connections).
    """

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        unix_path: Optional[str] = None,
        timeout: float = 30.0,
    ) -> None:
        if (unix_path is None) == (host is None):
            raise ValueError("pass exactly one of host/port or unix_path")
        if unix_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(unix_path)
        else:
            self._sock = socket.create_connection((host, int(port)), timeout=timeout)
        self._buffer = b""

    # -- framing -------------------------------------------------------- #

    def _send(self, payload: dict) -> None:
        self._sock.sendall(encode_frame(payload))

    def _read_exactly(self, count: int) -> bytes:
        while len(self._buffer) < count:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ServingError("server closed the connection mid-frame")
            self._buffer += chunk
        data, self._buffer = self._buffer[:count], self._buffer[count:]
        return data

    def read_frame(self) -> dict:
        (length,) = FRAME_HEADER.unpack(self._read_exactly(FRAME_HEADER.size))
        if length > MAX_FRAME_BYTES:
            raise ServingError("frame length %d exceeds the %d-byte bound"
                               % (length, MAX_FRAME_BYTES))
        return json.loads(self._read_exactly(length).decode("utf-8"))

    def _expect(self, op: str) -> dict:
        frame = self.read_frame()
        if frame.get("op") == "error":
            raise ServingError(
                str(frame.get("error")),
                lost_quote_ids=frame.get("lost_quote_ids") or [],
            )
        if frame.get("op") != op:
            raise ServingError("expected %r frame, got %r" % (op, frame.get("op")))
        return frame

    # -- operations ----------------------------------------------------- #

    def quote(self, key: SessionKey, features, reserve: Optional[float] = None) -> dict:
        """Request one quote and block until its result frame arrives."""
        self._send(
            {
                "op": "quote",
                "app": key.app,
                "segment": key.segment,
                "features": [float(value) for value in np.asarray(features, dtype=float)],
                "reserve": None if reserve is None else float(reserve),
            }
        )
        return self._expect("quote_result")

    def feedback(self, key: SessionKey, quote_id: int, accepted: bool) -> None:
        self._send(
            {
                "op": "feedback",
                "app": key.app,
                "segment": key.segment,
                "quote_id": int(quote_id),
                "accepted": bool(accepted),
            }
        )
        self._expect("feedback_ok")

    def flush(self) -> int:
        self._send({"op": "flush"})
        return int(self._expect("flush_ok")["drained"])

    def stats(self) -> dict:
        self._send({"op": "stats"})
        return self._expect("stats")

    def ping(self) -> None:
        self._send({"op": "ping"})
        self._expect("pong")

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "QuoteSocketClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# --------------------------------------------------------------------------- #
# Closed-loop replay through the socket
# --------------------------------------------------------------------------- #


def serve_closed_loop_socket(
    client: QuoteSocketClient,
    key: SessionKey,
    materialized: MaterializedArrivals,
    pricer_name: Optional[str] = None,
) -> SimulationResult:
    """Drive one session through a materialised market *over the socket*.

    The socket twin of :func:`repro.serving.loop.serve_closed_loop`: one
    quote per round, the sale settled against the realised market value with
    the same scalar comparison, feedback applied before the next round.
    Because JSON floats round-trip exactly and the backend drives the same
    propose/update protocol, the resulting transcript is bit-identical to
    the offline engine — through the socket *and* (with a sharded backend)
    through a process boundary.
    """
    transcript = Transcript.for_materialized(materialized)
    for round_ in stream_rounds(materialized):
        index = round_.index
        result = client.quote(key, round_.features, reserve=round_.reserve)
        posted_price = result["posted_price"]
        if result["skipped"] or posted_price is None:
            sold = False
        else:
            sold = posted_price <= round_.market_value
            transcript.link_prices[index] = result["link_price"]
            transcript.posted_prices[index] = posted_price
            transcript.sold[index] = sold
        client.feedback(key, result["quote_id"], sold)
        transcript.skipped[index] = result["skipped"]
        transcript.exploratory[index] = result["exploratory"]
    transcript.finalize_regrets()
    return SimulationResult(
        pricer_name=pricer_name if pricer_name is not None else str(key),
        transcript=transcript,
    )
