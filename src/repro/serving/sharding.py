"""Cross-process session sharding for the quote-serving subsystem.

:class:`ShardedRegistry` is a router in front of *N* worker processes, each
owning one :class:`~repro.serving.registry.PricerRegistry` plus one
:class:`~repro.serving.service.QuoteService`.  Session keys are placed on
shards through a **versioned routing table**: the default placement is a
stable (process-independent) SHA-1 hash of the key, and per-key overrides
re-home individual sessions while a live reshard is in flight — a session's
entire lifetime (creation, every quote, every feedback event, its snapshot
file) lives on exactly one worker at a time:

* **quote/feedback dispatch** travels over ``multiprocessing`` pipes, batched
  per shard (one message per touched shard per call, never one per request);
* **quote ids are globalised** by the router with a fixed stride
  (``global = local * ID_STRIDE + shard``) so ids stay stable while the
  worker count changes underneath them; ids handed out for quotes *parked*
  during a migration use the reserved :data:`PARKED_SLOT` lane and are
  aliased to the real id once replayed on the target shard;
* **per-shard snapshot dirs** (``<snapshot_dir>/shard-<i>``) keep the
  checkpoint files of different workers disjoint while staying ordinary
  pricer checkpoints — a session rehydrates bit-identically on restart;
* **failure accounting crosses the process boundary**: a worker-side drain
  failure arrives as the same structured :class:`~repro.exceptions.
  ServingError` (lost / requeued quote ids, translated to global ids) the
  in-process service raises, and a shard worker dying mid-command surfaces
  its complete in-flight quote set as lost exactly once — subsequent polls
  return normally instead of re-raising forever.

**Online rebalancing.**  :meth:`ShardedRegistry.rehome_session` migrates one
session between shards *under traffic*: new admissions for the moving key
are parked (their ids issued immediately, so frontend waiter maps stay
correct), the source shard drains the session's queued quotes, the router
waits for its in-flight feedback to settle (per-session quiesce — every
other session keeps serving), the checkpoint file is copied byte-exactly to
the target shard's directory, the session is re-attached (pinned) on the
target, the routing table gains an override, and the parked quotes are
replayed in order.  :mod:`repro.serving.rebalance` drives whole N→M
migrations over this primitive.  Because each session is pinned to one
worker at a time and the per-session protocol (quote → feedback → next
quote) is preserved by per-shard FIFO pipes and ordered parked replay, a
closed-loop replay through a migration is **bit-identical** to the
in-process service and to the offline engine (pinned by
``tests/serving/``).

The default start method is ``fork`` (factories may close over live models
and numpy arrays, shared copy-on-write); pass ``start_method="spawn"`` with
a picklable factory on platforms without fork.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import multiprocessing

from repro.exceptions import RebalanceError, ServingError
from repro.serving.registry import PricerRegistry
from repro.serving.requests import FeedbackEvent, QuoteRequest, QuoteResponse, SessionKey
from repro.serving.store import SNAPSHOT_FORMATS, list_segment_sessions
from repro.serving.service import MicroBatchConfig, QuoteService
from repro.utils.metrics import LatencySummary

#: Fixed stride of the global quote-id space: ``global = local * ID_STRIDE +
#: shard``.  A constant (rather than the live shard count) keeps every
#: already-issued id valid while workers are added or removed mid-flight.
ID_STRIDE = 4096

#: Reserved shard lane for quote ids issued while their session is moving
#: between shards — the id is handed out immediately (waiter maps key on it)
#: and aliased to the real target-shard id once the parked quote is replayed.
PARKED_SLOT = ID_STRIDE - 1

#: Maximum live worker count (the parked lane is reserved).
MAX_SHARDS = ID_STRIDE - 1


def shard_of_key(key: SessionKey, num_shards: int) -> int:
    """The stable default shard index of one session key.

    Derived from a SHA-1 digest of ``(app, segment)`` — not Python's salted
    ``hash()`` — so every process (router, workers, a restarted service)
    agrees on the placement.
    """
    raw = ("%s\x00%s" % (key.app, key.segment)).encode("utf-8")
    digest = hashlib.sha1(raw).digest()
    return int.from_bytes(digest[:8], "big") % num_shards


@dataclass
class RoutingTable:
    """Versioned key→shard map: hash placement plus per-key overrides.

    ``hash_shards`` is the divisor of the default SHA-1 placement;
    ``overrides`` re-home individual keys while a migration is in flight.
    Every mutation bumps ``version``, so stats consumers can observe
    routing changes.  :meth:`commit` retires the overrides into a new hash
    divisor once a full N→M migration has moved every relocating session.
    """

    hash_shards: int
    overrides: Dict[SessionKey, int] = field(default_factory=dict)
    version: int = 0

    def shard_of(self, key: SessionKey) -> int:
        override = self.overrides.get(key)
        if override is not None:
            return override
        return shard_of_key(key, self.hash_shards)

    def set_override(self, key: SessionKey, shard: int) -> None:
        self.overrides[key] = shard
        self.version += 1

    def commit(self, hash_shards: int) -> None:
        """Adopt a new hash divisor, validating every override agrees.

        A key whose override does not match its hash placement under the
        new divisor would be stranded (looked up on the wrong shard after a
        restart) — the commit refuses instead of silently dropping it.
        """
        for key, shard in self.overrides.items():
            expected = shard_of_key(key, hash_shards)
            if shard != expected:
                raise RebalanceError(
                    "cannot commit routing at %d shards: session %s sits on "
                    "shard %d but hashes to shard %d — move it first"
                    % (hash_shards, key, shard, expected),
                    key=key,
                )
        self.overrides.clear()
        self.hash_shards = hash_shards
        self.version += 1


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #


def _shard_worker_main(
    conn,
    shard_index: int,
    factory,
    config,
    snapshot_dir,
    max_sessions,
    persist_every,
    first_quote_id: int = 0,
    snapshot_format: str = "legacy",
) -> None:
    """One shard's request loop: a registry + service behind a pipe.

    Commands are ``(op, payload)`` tuples; every command gets exactly one
    ``("ok", result)`` or ``("error", exception)`` reply, so the parent can
    pipeline sends across shards and collect replies in order.
    ``first_quote_id`` seeds the service's id counter — a respawned worker
    starts past its dead predecessor's highest issued id, so stale feedback
    for a lost quote can never settle a fresh one by id collision.
    """
    registry = PricerRegistry(
        factory,
        snapshot_dir=snapshot_dir,
        max_sessions=max_sessions,
        persist_every=persist_every,
        snapshot_format=snapshot_format,
    )
    service = QuoteService(registry, config=config, first_quote_id=first_quote_id)
    while True:
        try:
            op, payload = conn.recv()
        except (EOFError, OSError):
            break
        try:
            if op == "submit":
                result = service.submit_many(payload)
            elif op == "poll":
                result = service.poll()
            elif op == "flush":
                result = service.flush()
            elif op == "quote":
                result = service.quote(payload)
            elif op == "feedback":
                service.feedback_batch(payload)
                result = len(payload)
            elif op == "feedback_many":
                result = service.feedback_many(payload)
            elif op == "replay":
                result = _replay_closed_loop_window(service, payload)
            elif op == "session_info":
                session = registry.peek(payload)
                result = {
                    "resident": session is not None,
                    "pending": len(session.pending) if session is not None else 0,
                    "queued": service.queued_for(payload),
                    "rounds_seen": session.rounds_seen if session is not None else None,
                    "pinned": session.pinned if session is not None else False,
                }
            elif op == "export_session":
                session = registry.peek(payload)
                if session is not None:
                    result = {
                        "resident": True,
                        "path": registry.export_session(payload),
                    }
                else:
                    # Cold session: materialise a legacy file from a segment
                    # record if that is where the state lives (tombstoning
                    # it), or hand back the existing legacy file.
                    result = {
                        "resident": False,
                        "path": registry.materialize_legacy(payload),
                    }
            elif op == "attach_session":
                key = payload["key"]
                session = registry.session(key)
                if payload.get("pin"):
                    registry.pin(key)
                result = {
                    "hydrated": session.hydrated,
                    "rounds_seen": session.rounds_seen,
                }
            elif op == "pin":
                registry.pin(payload)
                result = True
            elif op == "unpin":
                registry.unpin(payload)
                result = True
            elif op == "resident_keys":
                result = list(registry.resident_keys)
            elif op == "stats":
                result = {
                    "shard": shard_index,
                    "quotes_served": service.stats.quotes_served,
                    "drains": service.stats.drains,
                    "batched_proposals": service.stats.batched_proposals,
                    "feedback_applied": service.stats.feedback_applied,
                    "latency_samples": list(service.stats.latency.samples_seconds),
                    "registry": registry.stats.as_dict(),
                    "sessions_resident": registry.resident_count,
                }
            elif op == "persist":
                result = registry.flush()
            elif op == "stop":
                conn.send(("ok", None))
                break
            else:
                raise ServingError("unknown shard command %r" % (op,))
        except Exception as exc:  # noqa: BLE001 — every failure must cross the pipe
            try:
                conn.send(("error", exc))
            except Exception:
                conn.send(("error", ServingError(repr(exc))))
            continue
        conn.send(("ok", result))
    conn.close()


def _replay_closed_loop_window(service: QuoteService, pairs) -> int:
    """Serve a window of ``(request, market_value)`` pairs closed-loop.

    The shard-local half of the replay bench: one synchronous quote per
    request, the sale settled against the realised market value with the
    engine's scalar comparison, feedback applied before the next request of
    the same session (pairs arrive in round order per session, so the
    per-session protocol is exactly the offline engine's).
    """
    served = 0
    for request, market_value in pairs:
        response = service.quote(request)
        service.feedback(
            FeedbackEvent(
                key=request.key,
                quote_id=response.quote_id,
                accepted=response.sold_at(market_value),
            )
        )
        served += 1
    return served


# --------------------------------------------------------------------------- #
# Router side
# --------------------------------------------------------------------------- #


@dataclass
class _ShardHandle:
    """Parent-side view of one worker: its process, pipe, and queue depth.

    ``outstanding`` holds the *internal* global ids of router-submitted
    quotes that have not produced a response yet — an exact set, not a
    counter, so drain failures (whose lost ids may include quotes the
    router never submitted, e.g. a worker-side synchronous quote) cannot
    skew the accounting.  ``local_floor`` tracks one past the highest local
    id the worker is known to have issued; a respawned worker is seeded
    from it.  ``dead`` marks a worker whose pipe broke — its in-flight
    quotes were reported lost once, and no further commands are sent.
    """

    index: int
    process: Any
    conn: Any
    snapshot_dir: Optional[str] = None
    outstanding: set = field(default_factory=set)
    local_floor: int = 0
    dead: bool = False


@dataclass
class _MovingSession:
    """Router-side state of one in-flight session migration."""

    key: SessionKey
    source: int
    target: int
    #: ``(public_id, request)`` pairs admitted while the session moves —
    #: replayed in order on the target shard once it owns the session.
    parked: List[Tuple[int, QuoteRequest]] = field(default_factory=list)
    started: float = 0.0


@dataclass
class RebalanceStats:
    """Counters of the online-migration machinery (stats ``rebalance`` block)."""

    sessions_moved: int = 0
    files_moved: int = 0
    moves_failed: int = 0
    parked_quotes: int = 0
    peak_parked: int = 0
    replayed_quotes: int = 0
    quiesce_seconds: List[float] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "sessions_moved": self.sessions_moved,
            "files_moved": self.files_moved,
            "moves_failed": self.moves_failed,
            "parked_quotes": self.parked_quotes,
            "peak_parked": self.peak_parked,
            "replayed_quotes": self.replayed_quotes,
            "quiesce": LatencySummary.from_seconds(self.quiesce_seconds).as_dict(),
        }


def _atomic_write_bytes(path: str, data: bytes) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    descriptor, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(data)
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


class ShardedRegistry:
    """Hash-sharded quote service: N worker processes behind one router.

    Mirrors the :class:`~repro.serving.service.QuoteService` surface
    (``submit`` / ``poll`` / ``flush`` / ``quote`` / ``feedback`` /
    ``feedback_batch``) so the socket front end and the load generator drive
    either interchangeably.  All public methods are thread-safe (one router
    lock), so a rebalancer thread can migrate sessions while frontend
    threads keep serving.

    Parameters
    ----------
    factory:
        Session factory, as for :class:`PricerRegistry`.  With the default
        ``fork`` start method it may close over live objects; with
        ``spawn`` it must be picklable.
    num_shards:
        Worker process count (≥ 1).
    config:
        Micro-batch window applied inside every worker's service.
    snapshot_dir:
        Parent directory of the per-shard snapshot dirs
        (``shard-00``, ``shard-01``, ...); ``None`` disables persistence
        (and online rebalancing, which moves state through snapshots).
    max_sessions / persist_every:
        Per-shard registry knobs (capacity is per worker).
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` when
        available.
    """

    def __init__(
        self,
        factory,
        num_shards: int,
        config: Optional[MicroBatchConfig] = None,
        snapshot_dir: Optional[str] = None,
        max_sessions: Optional[int] = None,
        persist_every: int = 0,
        start_method: Optional[str] = None,
        snapshot_format: str = "legacy",
    ) -> None:
        if snapshot_format not in SNAPSHOT_FORMATS:
            raise ValueError(
                "snapshot_format must be one of %r, got %r"
                % (SNAPSHOT_FORMATS, snapshot_format)
            )
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1, got %d" % num_shards)
        if num_shards > MAX_SHARDS:
            raise ValueError(
                "num_shards must be at most %d, got %d" % (MAX_SHARDS, num_shards)
            )
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._context = multiprocessing.get_context(start_method)
        self._factory = factory
        self._config = config
        self._snapshot_root = snapshot_dir
        self._max_sessions = max_sessions
        self._persist_every = persist_every
        self._snapshot_format = snapshot_format
        self.num_shards = num_shards
        self._closed = False
        self._lock = threading.RLock()
        #: Signalled whenever a session migration completes or aborts.
        self._moved = threading.Condition(self._lock)
        #: Responses collected while another shard's drain failed — returned
        #: by the next poll/flush so a partial failure never drops quotes.
        self._outbox: List[QuoteResponse] = []
        self._routing = RoutingTable(hash_shards=num_shards)
        self._moving: Dict[SessionKey, _MovingSession] = {}
        #: Parked-quote id aliases, live only between a parked quote's replay
        #: and its feedback settling: internal target-shard id → public
        #: parked-lane id, and the reverse map for feedback routing.
        self._aliases: Dict[int, int] = {}
        self._alias_back: Dict[int, int] = {}
        self._next_parked_seq = 0
        #: Quote ids written off outside a poll (``respawn_shard``, a failed
        #: parked-quote replay).  The next poll/flush raises them as a
        #: structured ServingError so a concurrent serving loop — e.g. the
        #: socket frontend's drain task — fails the right waiters instead of
        #: leaving them hanging forever.
        self._written_off: List[int] = []
        self.rebalance_stats = RebalanceStats()
        self._shards: List[_ShardHandle] = []
        for index in range(num_shards):
            self._shards.append(self._spawn_shard(index))

    @property
    def snapshot_root(self) -> Optional[str]:
        """Parent directory of the per-shard snapshot dirs (``None`` = off)."""
        return self._snapshot_root

    def _spawn_shard(self, index: int, first_quote_id: int = 0) -> _ShardHandle:
        shard_dir = None
        if self._snapshot_root is not None:
            shard_dir = os.path.join(self._snapshot_root, "shard-%02d" % index)
            os.makedirs(shard_dir, exist_ok=True)
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_shard_worker_main,
            args=(
                child_conn,
                index,
                self._factory,
                self._config,
                shard_dir,
                self._max_sessions,
                self._persist_every,
                first_quote_id,
                self._snapshot_format,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _ShardHandle(
            index=index,
            process=process,
            conn=parent_conn,
            snapshot_dir=shard_dir,
            local_floor=first_quote_id,
        )

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    def shard_of(self, key: SessionKey) -> int:
        """The shard index currently owning ``key``'s session."""
        with self._lock:
            return self._routing.shard_of(key)

    @property
    def routing_version(self) -> int:
        """The routing table's mutation counter."""
        with self._lock:
            return self._routing.version

    def _globalize(self, shard: int, local_id: int) -> int:
        return local_id * ID_STRIDE + shard

    def _localize(self, key: SessionKey, public_id: int) -> Tuple[int, int]:
        internal = self._alias_back.get(public_id, public_id)
        shard = internal % ID_STRIDE
        if shard == PARKED_SLOT:
            raise ServingError(
                "quote id %d of session %s is parked mid-rebalance; its "
                "response has not been issued yet" % (public_id, key)
            )
        expected = self._routing.shard_of(key)
        if shard != expected or shard >= len(self._shards):
            raise ServingError(
                "quote id %d does not belong to session %s (shard %d)"
                % (public_id, key, expected)
            )
        return shard, internal // ID_STRIDE

    def _translate_response(self, handle: _ShardHandle, response: QuoteResponse) -> QuoteResponse:
        local_id = response.quote_id
        if local_id + 1 > handle.local_floor:
            handle.local_floor = local_id + 1
        internal = self._globalize(handle.index, local_id)
        handle.outstanding.discard(internal)
        # A replayed parked quote answers under its original public id; the
        # alias stays until the quote's feedback settles (or it is lost).
        response.quote_id = self._aliases.get(internal, internal)
        return response

    def _lost_public(self, handle: _ShardHandle, local_id: int) -> int:
        """Translate one lost worker-local id, repairing the accounting."""
        internal = self._globalize(handle.index, local_id)
        handle.outstanding.discard(internal)
        public = self._aliases.pop(internal, internal)
        self._alias_back.pop(public, None)
        return public

    def _translate_error(self, handle: _ShardHandle, exc: Exception) -> Exception:
        if isinstance(exc, ServingError):
            exc.lost_quote_ids = [
                self._lost_public(handle, local) for local in exc.lost_quote_ids
            ]
            requeued = []
            for local in exc.requeued_quote_ids:
                internal = self._globalize(handle.index, local)
                requeued.append(self._aliases.get(internal, internal))
            exc.requeued_quote_ids = requeued
            if exc.response is not None:
                self._translate_response(handle, exc.response)
        return exc

    def _settle_alias(self, public_id: int) -> None:
        """Drop a replayed parked quote's alias once its feedback settled."""
        internal = self._alias_back.pop(public_id, None)
        if internal is not None:
            self._aliases.pop(internal, None)

    # ------------------------------------------------------------------ #
    # Pipe plumbing
    # ------------------------------------------------------------------ #

    def _shard_down(self, handle: _ShardHandle, message: str) -> ServingError:
        """Mark a worker dead; its whole in-flight set is lost exactly once."""
        handle.dead = True
        lost_internal = sorted(handle.outstanding)
        handle.outstanding.clear()
        lost_public = []
        for internal in lost_internal:
            public = self._aliases.pop(internal, internal)
            self._alias_back.pop(public, None)
            lost_public.append(public)
        if lost_public:
            message += "; %d in-flight quote(s) lost" % len(lost_public)
        return ServingError(message, lost_quote_ids=lost_public)

    def _send(self, handle: _ShardHandle, op: str, payload) -> None:
        if self._closed:
            raise ServingError("sharded registry is closed")
        if handle.dead:
            raise ServingError(
                "shard %d worker is dead; respawn_shard(%d) to recover"
                % (handle.index, handle.index)
            )
        try:
            handle.conn.send((op, payload))
        except (BrokenPipeError, OSError) as exc:
            raise self._shard_down(
                handle, "shard %d worker is gone: %s" % (handle.index, exc)
            )

    def _recv(self, handle: _ShardHandle):
        try:
            status, payload = handle.conn.recv()
        except (EOFError, OSError):
            raise self._shard_down(
                handle, "shard %d worker died mid-command" % handle.index
            )
        if status == "error":
            if isinstance(payload, Exception):
                raise self._translate_error(handle, payload)
            raise ServingError("shard %d failed: %r" % (handle.index, payload))
        return payload

    def _roundtrip(self, handle: _ShardHandle, op: str, payload=None):
        self._send(handle, op, payload)
        return self._recv(handle)

    def _gather(self, requests: Sequence[Tuple[_ShardHandle, str, Any]]) -> List:
        """Send every command first, then collect replies — shards overlap.

        A send failure on one shard (its worker died) must not abort the
        loop: later shards still get their commands, and replies from every
        successfully-sent shard are collected before the first error is
        raised — otherwise uncollected replies would desync that shard's
        pipe for every subsequent command.
        """
        send_errors: Dict[int, Exception] = {}
        for handle, op, payload in requests:
            try:
                self._send(handle, op, payload)
            except Exception as exc:
                send_errors[handle.index] = exc
        results = []
        first_error: Optional[Exception] = None
        for handle, _op, _payload in requests:
            exc = send_errors.get(handle.index)
            if exc is None:
                try:
                    results.append(self._recv(handle))
                    continue
                except Exception as recv_exc:  # keep draining the other pipes
                    exc = recv_exc
            results.append(None)
            if first_error is None:
                first_error = exc
        if first_error is not None:
            raise first_error
        return results

    # ------------------------------------------------------------------ #
    # Quote path
    # ------------------------------------------------------------------ #

    def submit(self, request: QuoteRequest) -> int:
        """Enqueue one request on its key's shard; returns the global id."""
        return self.submit_many([request])[0]

    def _park(self, moving: _MovingSession, request: QuoteRequest) -> int:
        """Park one admission for a moving session; returns its public id."""
        public = self._next_parked_seq * ID_STRIDE + PARKED_SLOT
        self._next_parked_seq += 1
        moving.parked.append((public, request))
        self.rebalance_stats.parked_quotes += 1
        parked_now = sum(len(entry.parked) for entry in self._moving.values())
        if parked_now > self.rebalance_stats.peak_parked:
            self.rebalance_stats.peak_parked = parked_now
        return public

    def submit_many(self, requests: Sequence[QuoteRequest]) -> List[int]:
        """Enqueue a batch, one pipe message per touched shard.

        Returns the global quote ids in input order; per-shard arrival order
        equals input order, so micro-batch grouping inside a worker behaves
        exactly as if the requests had been submitted directly.  Requests
        for a session that is mid-migration are parked — their ids are
        issued immediately (from the reserved parked lane) and the requests
        replayed in order on the target shard, so no quote is ever lost to
        a move.
        """
        requests = list(requests)
        with self._lock:
            ids: List[Optional[int]] = [None] * len(requests)
            by_shard: Dict[int, List[int]] = {}
            for position, request in enumerate(requests):
                moving = self._moving.get(request.key)
                if moving is not None:
                    ids[position] = self._park(moving, request)
                    continue
                by_shard.setdefault(self._routing.shard_of(request.key), []).append(
                    position
                )
            send_errors: Dict[int, Exception] = {}
            for shard, positions in by_shard.items():
                try:
                    self._send(
                        self._shards[shard], "submit", [requests[p] for p in positions]
                    )
                except Exception as exc:
                    send_errors[shard] = exc
            # Collect per shard so a dead shard cannot corrupt the
            # queue-depth accounting of the healthy ones: requests a healthy
            # shard *did* enqueue stay visible to poll()/flush() even when
            # the call raises.
            first_error: Optional[Exception] = None
            for shard, positions in by_shard.items():
                handle = self._shards[shard]
                exc = send_errors.get(shard)
                local_ids = None
                if exc is None:
                    try:
                        local_ids = self._recv(handle)
                    except Exception as recv_exc:
                        exc = recv_exc
                if exc is not None:
                    if first_error is None:
                        first_error = exc
                    continue
                for position, local_id in zip(positions, local_ids):
                    if local_id + 1 > handle.local_floor:
                        handle.local_floor = local_id + 1
                    internal = self._globalize(shard, local_id)
                    ids[position] = internal
                    handle.outstanding.add(internal)
            if first_error is not None:
                # Healthy shards *did* enqueue their requests, so the caller
                # must not treat the whole batch as failed: the per-position
                # id list (None = never enqueued) rides on the error, letting
                # a serving loop keep waiting for the quotes that will in
                # fact be served.
                first_error.submitted_quote_ids = ids
                raise first_error
            return ids

    def _collect(self, op: str, candidates: List[_ShardHandle]) -> List[QuoteResponse]:
        if self._written_off:
            # Losses recorded outside a poll (worker respawn, failed parked
            # replay) surface here exactly once; the outbox is untouched, so
            # healthy responses still come back on the next call.
            lost, self._written_off = self._written_off, []
            raise ServingError(
                "%d in-flight quote(s) were lost to a worker replacement"
                % len(lost),
                lost_quote_ids=lost,
            )
        responses, self._outbox = self._outbox, []
        if not candidates:
            return responses
        send_errors: Dict[int, Exception] = {}
        for handle in candidates:
            try:
                self._send(handle, op, None)
            except Exception as exc:
                send_errors[handle.index] = exc
        first_error: Optional[Exception] = None
        for handle in candidates:
            exc = send_errors.get(handle.index)
            shard_responses = None
            if exc is None:
                try:
                    shard_responses = self._recv(handle)
                except Exception as recv_exc:  # keep draining the other pipes
                    exc = recv_exc
            if exc is not None:
                if first_error is None:
                    first_error = exc
                continue
            for response in shard_responses:
                responses.append(self._translate_response(handle, response))
        if first_error is not None:
            # Healthy shards' responses survive the failing shard's error:
            # they are parked and returned by the next poll/flush.
            self._outbox = responses
            raise first_error
        return responses

    def poll(self) -> List[QuoteResponse]:
        """Poll every shard with queued work; returns ready responses."""
        with self._lock:
            return self._collect(
                "poll", [h for h in self._shards if h.outstanding and not h.dead]
            )

    def flush(self) -> List[QuoteResponse]:
        """Drain every shard with queued work unconditionally."""
        with self._lock:
            return self._collect(
                "flush", [h for h in self._shards if h.outstanding and not h.dead]
            )

    def quote(self, request: QuoteRequest) -> QuoteResponse:
        """Synchronous single-quote path on the owning shard.

        Waits (bounded) for an in-flight migration of the key to finish —
        the synchronous contract cannot park.
        """
        with self._lock:
            deadline = time.monotonic() + 30.0
            while request.key in self._moving:
                if self._closed:
                    raise ServingError("sharded registry is closed")
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._moved.wait(timeout=remaining):
                    raise RebalanceError(
                        "timed out waiting for session %s to finish moving"
                        % (request.key,),
                        key=request.key,
                    )
            handle = self._shards[self._routing.shard_of(request.key)]
            response = self._roundtrip(handle, "quote", request)
            return self._translate_response(handle, response)

    # ------------------------------------------------------------------ #
    # Feedback path
    # ------------------------------------------------------------------ #

    def feedback(self, event: FeedbackEvent) -> None:
        """Apply one outcome on its key's shard."""
        self.feedback_batch([event])

    def feedback_batch(self, events: Iterable[FeedbackEvent]) -> None:
        """Apply a window of outcomes, one pipe message per touched shard.

        Every event's global quote id is validated against its key's owning
        shard before dispatch — a mistyped key cannot settle another
        session's quote on the wrong worker.  Within one shard the
        service's all-or-nothing group validation applies; across shards
        the batch is applied per shard (no cross-process transaction), so a
        failing shard leaves the other shards' outcomes applied — the
        raised error names the failing session.
        """
        with self._lock:
            by_shard: Dict[int, List[FeedbackEvent]] = {}
            settled: List[int] = []
            for event in events:
                shard, local_id = self._localize(event.key, event.quote_id)
                by_shard.setdefault(shard, []).append(
                    FeedbackEvent(key=event.key, quote_id=local_id, accepted=event.accepted)
                )
                settled.append(event.quote_id)
            if not by_shard:
                return
            self._gather(
                [
                    (self._shards[shard], "feedback", group)
                    for shard, group in by_shard.items()
                ]
            )
            for public in settled:
                self._settle_alias(public)

    def feedback_many(self, events: Iterable[FeedbackEvent]) -> List[Optional[Exception]]:
        """Apply a mixed window of outcomes with **per-event** results.

        The cross-process twin of :meth:`QuoteService.feedback_many`: events
        are routed to their keys' shards (one pipe message per touched
        shard, shards overlapped send-all-then-collect) and each shard
        returns per-event outcomes, re-aligned here with the input order.
        An event whose global quote id does not belong to its key's shard
        gets its :class:`ServingError` as the outcome without crossing any
        pipe; a dead shard fails only its own events — outcomes routed to
        later healthy shards are still collected and returned.
        """
        events = list(events)
        with self._lock:
            outcomes: List[Optional[Exception]] = [None] * len(events)
            by_shard: Dict[int, List[int]] = {}
            local_events: Dict[int, List[FeedbackEvent]] = {}
            for index, event in enumerate(events):
                try:
                    shard, local_id = self._localize(event.key, event.quote_id)
                except ServingError as exc:
                    outcomes[index] = exc
                    continue
                by_shard.setdefault(shard, []).append(index)
                local_events.setdefault(shard, []).append(
                    FeedbackEvent(key=event.key, quote_id=local_id, accepted=event.accepted)
                )
            if not by_shard:
                return outcomes
            shards = list(by_shard)
            send_errors: Dict[int, Exception] = {}
            for shard in shards:
                try:
                    self._send(self._shards[shard], "feedback_many", local_events[shard])
                except Exception as exc:
                    send_errors[shard] = exc
            for shard in shards:
                handle = self._shards[shard]
                exc = send_errors.get(shard)
                shard_outcomes = None
                if exc is None:
                    try:
                        shard_outcomes = self._recv(handle)
                    except Exception as recv_exc:  # keep draining the other pipes
                        exc = recv_exc
                if exc is not None:
                    for index in by_shard[shard]:
                        outcomes[index] = exc
                    continue
                for index, outcome in zip(by_shard[shard], shard_outcomes):
                    if isinstance(outcome, Exception):
                        outcomes[index] = self._translate_error(handle, outcome)
                    else:
                        self._settle_alias(events[index].quote_id)
            return outcomes

    # ------------------------------------------------------------------ #
    # Online rebalancing
    # ------------------------------------------------------------------ #

    def rehome_session(
        self,
        key: SessionKey,
        target_shard: int,
        quiesce_timeout: float = 30.0,
        poll_interval: float = 0.002,
        verify: bool = True,
    ) -> dict:
        """Migrate one session to ``target_shard`` while traffic continues.

        The per-session quiesce state machine (every other session keeps
        serving throughout):

        1. **park** — the key is marked moving; new admissions are parked
           with ids from the reserved lane instead of dispatched;
        2. **drain** — the source shard serves whatever of the session is
           still queued in its micro-batch window (responses surface
           through the shared outbox on the next poll), then the router
           waits for the session's in-flight feedback to settle (bounded by
           ``quiesce_timeout``; the router lock is released between probes,
           so feedback traffic can drain the session);
        3. **export** — the quiesced session is persisted and dropped on
           the source worker; its snapshot file is copied byte-exactly
           (re-read and compared when ``verify``) into the target shard's
           directory and removed from the source's;
        4. **re-home** — the routing table gains an override for the key,
           the target worker re-attaches (hydrates) the session pinned, and
           the parked admissions are replayed in order — their parked ids
           are aliased to the real target-shard ids, so earlier-issued ids
           stay valid for feedback;
        5. **resume** — the session is unpinned and waiters are notified.

        On failure the move is rolled back: parked quotes are re-dispatched
        to the shard that currently owns the key, and anything that could
        not be re-dispatched is reported in the raised
        :class:`RebalanceError`'s ``lost_quote_ids``.  Returns a dict of
        move facts (source/target, parked replay count, quiesce seconds).
        """
        with self._lock:
            if self._closed:
                raise ServingError("sharded registry is closed")
            if self._snapshot_root is None:
                raise RebalanceError(
                    "online rebalance requires a snapshot_dir (session state "
                    "moves through checkpoint files)",
                    key=key,
                )
            if not 0 <= target_shard < len(self._shards):
                raise RebalanceError(
                    "target shard %d does not exist (%d shards)"
                    % (target_shard, len(self._shards)),
                    key=key,
                )
            if key in self._moving:
                raise RebalanceError("session %s is already moving" % (key,), key=key)
            source = self._routing.shard_of(key)
            if source == target_shard:
                return {
                    "moved": False,
                    "source": source,
                    "target": target_shard,
                    "resident": False,
                    "hydrated": False,
                    "file_moved": False,
                    "parked_replayed": 0,
                    "quiesce_seconds": 0.0,
                }
            source_handle = self._shards[source]
            target_handle = self._shards[target_shard]
            if source_handle.dead or target_handle.dead:
                raise RebalanceError(
                    "cannot move session %s: shard %d is dead (respawn it first)"
                    % (key, source if source_handle.dead else target_shard),
                    key=key,
                )
            entry = _MovingSession(
                key=key, source=source, target=target_shard, started=time.perf_counter()
            )
            self._moving[key] = entry
        try:
            quiesce_seconds = self._quiesce(entry, source_handle, quiesce_timeout, poll_interval)
            with self._lock:
                export = self._roundtrip(source_handle, "export_session", key)
                file_moved = False
                if export["path"] is not None and os.path.exists(export["path"]):
                    self._move_snapshot(key, export["path"], target_handle, verify)
                    file_moved = True
                attach = None
                if export["resident"]:
                    if not file_moved:
                        raise RebalanceError(
                            "session %s was resident on shard %d but exported no "
                            "snapshot file" % (key, source),
                            key=key,
                        )
                    attach = self._roundtrip(
                        target_handle, "attach_session", {"key": key, "pin": True}
                    )
                self._routing.set_override(key, target_shard)
                replayed = len(entry.parked)
                if entry.parked:
                    try:
                        self._replay_parked(entry.parked, target_handle)
                    except Exception as exc:
                        # The session itself moved, but its parked quotes
                        # could not be re-dispatched: they are lost, and the
                        # error accounts for every one of them.
                        self._finish_move(key, target_handle, pinned=bool(attach))
                        self.rebalance_stats.moves_failed += 1
                        lost_parked = [public for public, _request in entry.parked]
                        self._written_off.extend(lost_parked)
                        raise RebalanceError(
                            "moved session %s to shard %d but failed to replay "
                            "%d parked quote(s): %s" % (key, target_shard, replayed, exc),
                            key=key,
                            lost_quote_ids=lost_parked,
                        ) from exc
                self._finish_move(key, target_handle, pinned=bool(attach))
                self.rebalance_stats.sessions_moved += 1
                if file_moved:
                    self.rebalance_stats.files_moved += 1
                self.rebalance_stats.quiesce_seconds.append(quiesce_seconds)
                return {
                    "moved": True,
                    "source": source,
                    "target": target_shard,
                    "resident": export["resident"],
                    "hydrated": bool(attach and attach["hydrated"]),
                    "file_moved": file_moved,
                    "parked_replayed": replayed,
                    "quiesce_seconds": quiesce_seconds,
                }
        except BaseException as exc:
            with self._lock:
                stale = self._moving.pop(key, None)
                lost: List[int] = []
                if stale is not None:
                    self.rebalance_stats.moves_failed += 1
                    if stale.parked:
                        # Re-dispatch the parked admissions to whatever shard
                        # currently owns the key (the override was only set
                        # on the success path, so this is the source unless
                        # the failure struck mid-re-home).
                        owner = self._shards[self._routing.shard_of(key)]
                        try:
                            self._replay_parked(stale.parked, owner)
                        except Exception:
                            lost = [public for public, _request in stale.parked]
                            self._written_off.extend(lost)
                self._moved.notify_all()
            if isinstance(exc, RebalanceError):
                exc.lost_quote_ids.extend(lost)
                raise
            raise RebalanceError(
                "failed to move session %s to shard %d: %s" % (key, target_shard, exc),
                key=key,
                lost_quote_ids=lost,
            ) from exc

    def _quiesce(
        self,
        entry: _MovingSession,
        source_handle: _ShardHandle,
        quiesce_timeout: float,
        poll_interval: float,
    ) -> float:
        """Wait until nothing of the moving session is queued or in flight."""
        deadline = time.monotonic() + quiesce_timeout
        while True:
            with self._lock:
                info = self._roundtrip(source_handle, "session_info", entry.key)
                if info["queued"]:
                    # Serve the session's (and everyone else's) queued
                    # quotes now; the responses surface via the next poll.
                    for response in self._roundtrip(source_handle, "flush"):
                        self._outbox.append(
                            self._translate_response(source_handle, response)
                        )
                    info = self._roundtrip(source_handle, "session_info", entry.key)
                if info["pending"] == 0 and info["queued"] == 0:
                    return time.perf_counter() - entry.started
            if time.monotonic() >= deadline:
                raise RebalanceError(
                    "quiesce of session %s timed out after %.1fs "
                    "(%d in-flight quote(s) awaiting feedback, %d queued)"
                    % (entry.key, quiesce_timeout, info["pending"], info["queued"]),
                    key=entry.key,
                )
            time.sleep(poll_interval)

    def _move_snapshot(
        self, key: SessionKey, source_path: str, target_handle: _ShardHandle, verify: bool
    ) -> None:
        """Copy one session checkpoint to the target shard's directory."""
        if target_handle.snapshot_dir is None:
            raise RebalanceError(
                "target shard %d has no snapshot directory" % target_handle.index,
                key=key,
            )
        with open(source_path, "rb") as handle:
            data = handle.read()
        target_path = os.path.join(
            target_handle.snapshot_dir, os.path.basename(source_path)
        )
        _atomic_write_bytes(target_path, data)
        if verify:
            with open(target_path, "rb") as handle:
                if handle.read() != data:
                    raise RebalanceError(
                        "snapshot of session %s did not copy byte-identically "
                        "to shard %d" % (key, target_handle.index),
                        key=key,
                    )
        os.unlink(source_path)

    def _replay_parked(
        self, parked: List[Tuple[int, QuoteRequest]], handle: _ShardHandle
    ) -> None:
        """Re-dispatch parked admissions in order, aliasing their ids."""
        local_ids = self._roundtrip(
            handle, "submit", [request for _public, request in parked]
        )
        for (public, _request), local_id in zip(parked, local_ids):
            if local_id + 1 > handle.local_floor:
                handle.local_floor = local_id + 1
            internal = self._globalize(handle.index, local_id)
            handle.outstanding.add(internal)
            self._aliases[internal] = public
            self._alias_back[public] = internal
        self.rebalance_stats.replayed_quotes += len(parked)

    def _finish_move(
        self, key: SessionKey, target_handle: _ShardHandle, pinned: bool
    ) -> None:
        self._moving.pop(key, None)
        if pinned:
            try:
                self._roundtrip(target_handle, "unpin", key)
            except ServingError:
                pass
        self._moved.notify_all()

    # ------------------------------------------------------------------ #
    # Shard lifecycle (scale out / respawn / scale in)
    # ------------------------------------------------------------------ #

    def add_shard(self) -> int:
        """Spawn one more worker; returns its shard index.

        The hash placement is unchanged until :meth:`commit_routing` — new
        sessions keep landing on the old divisor, and the new shard only
        receives sessions explicitly re-homed onto it.
        """
        with self._lock:
            if self._closed:
                raise ServingError("sharded registry is closed")
            index = len(self._shards)
            if index >= MAX_SHARDS:
                raise RebalanceError("cannot exceed %d shards" % MAX_SHARDS)
            self._shards.append(self._spawn_shard(index))
            self.num_shards = len(self._shards)
            return index

    def respawn_shard(self, index: int) -> List[int]:
        """Replace one (dead or live) worker with a fresh process.

        Returns the public ids of any quotes still in flight on the old
        worker — they are lost (reported here instead of raising, since the
        caller is already handling the failure).  The same ids are also
        raised, once, by the next ``poll()``/``flush()``: a serving loop
        polling concurrently (the socket frontend's drain task) must learn
        of the loss too, or its waiters hang forever.  The fresh worker re-seeds
        its quote-id counter past the predecessor's highest issued id and
        lazily re-hydrates sessions from the shard's write-behind
        snapshots, so recovered sessions continue bit-identically from
        their last persisted state.
        """
        with self._lock:
            if self._closed:
                raise ServingError("sharded registry is closed")
            old = self._shards[index]
            lost_internal = sorted(old.outstanding)
            old.outstanding.clear()
            lost_public: List[int] = []
            for internal in lost_internal:
                public = self._aliases.pop(internal, internal)
                self._alias_back.pop(public, None)
                lost_public.append(public)
            # A serving loop polling concurrently (the socket frontend) must
            # learn about the loss too, or its waiters hang forever.
            self._written_off.extend(lost_public)
            try:
                old.conn.close()
            except OSError:
                pass
            self._reap(old.process, timeout=1.0)
            self._shards[index] = self._spawn_shard(
                index, first_quote_id=old.local_floor
            )
            return lost_public

    def remove_trailing_shard(self) -> int:
        """Retire the highest-index worker; returns the new shard count.

        Refuses while anything still depends on the shard: in-flight
        quotes, resident sessions, snapshot files, routing overrides, or an
        active migration.  (After a full scale-in migration all of these
        are gone by construction.)
        """
        with self._lock:
            if self._closed:
                raise ServingError("sharded registry is closed")
            if len(self._shards) == 1:
                raise RebalanceError("cannot remove the last shard")
            if self._moving:
                raise RebalanceError(
                    "cannot remove a shard while %d session move(s) are in flight"
                    % len(self._moving)
                )
            handle = self._shards[-1]
            if handle.outstanding:
                raise RebalanceError(
                    "shard %d still has %d in-flight quote(s)"
                    % (handle.index, len(handle.outstanding))
                )
            if any(shard == handle.index for shard in self._routing.overrides.values()):
                raise RebalanceError(
                    "shard %d is still a routing override target" % handle.index
                )
            if not handle.dead:
                info = self._roundtrip(handle, "stats", None)
                if info["sessions_resident"]:
                    raise RebalanceError(
                        "shard %d still has %d resident session(s)"
                        % (handle.index, info["sessions_resident"])
                    )
            if handle.snapshot_dir is not None and os.path.isdir(handle.snapshot_dir):
                stranded = [
                    name
                    for name in os.listdir(handle.snapshot_dir)
                    if name.endswith(".session.npz")
                ]
                if stranded:
                    raise RebalanceError(
                        "shard %d still holds %d snapshot file(s)"
                        % (handle.index, len(stranded))
                    )
                # Segment-resident sessions are just as stranded as legacy
                # files — they live in this shard's segments/ directory.
                segment_resident = list_segment_sessions(handle.snapshot_dir)
                if segment_resident:
                    raise RebalanceError(
                        "shard %d still holds %d segment-resident session(s)"
                        % (handle.index, len(segment_resident))
                    )
            self._stop_handle(handle, timeout=5.0)
            self._shards.pop()
            self.num_shards = len(self._shards)
            return self.num_shards

    def routing_freeze(self):
        """The router lock as a context manager: no admissions while held.

        ``submit_many`` / ``quote`` and every routing mutation serialise on
        this lock, so holding it closes the race between a migration's final
        empty sweep and :meth:`commit_routing` — a brand-new session key
        cannot be admitted (and land on the old hash placement) in between.
        The lock is reentrant: the holder may still plan, re-home, and
        commit from the same thread.
        """
        return self._lock

    def commit_routing(self, hash_shards: Optional[int] = None) -> int:
        """Retire per-key overrides into a new hash divisor; returns version.

        Call after a full migration has re-homed every relocating session:
        each override must already equal its key's hash placement under the
        new divisor, so the table collapses back to the pure hash (a
        restarted service with ``num_shards=hash_shards`` finds every
        snapshot where it looks).
        """
        with self._lock:
            if hash_shards is None:
                hash_shards = len(self._shards)
            if not 1 <= hash_shards <= len(self._shards):
                raise RebalanceError(
                    "cannot commit routing at %d shards with %d workers"
                    % (hash_shards, len(self._shards))
                )
            self._routing.commit(hash_shards)
            return self._routing.version

    def resident_keys_by_shard(self) -> Dict[int, List[SessionKey]]:
        """Resident session keys per live shard (rebalance planning input)."""
        with self._lock:
            alive = [h for h in self._shards if not h.dead]
            results = self._gather([(h, "resident_keys", None) for h in alive])
            return {h.index: list(r) for h, r in zip(alive, results)}

    # ------------------------------------------------------------------ #
    # Replay driver (the sharded load-generator path)
    # ------------------------------------------------------------------ #

    def replay_closed_loop(
        self,
        pairs: Iterable[Tuple[QuoteRequest, float]],
        window: int = 256,
    ) -> int:
        """Replay ``(request, market_value)`` pairs closed-loop across shards.

        Pairs are queued per session preserving order, and each dispatch
        round routes every session's next window chunk to the shard that
        *currently* owns it (so a live migration mid-replay re-routes the
        remainder instead of serving it on a stale shard); the shard-local
        loops run in parallel (send-all-then-collect) while per-session
        semantics stay exactly closed-loop (quote, settle, feedback, next
        round).  Sessions that are mid-move simply wait their turn.
        Returns the number of quotes served.
        """
        if window < 1:
            raise ValueError("window must be positive, got %d" % window)
        key_queues: "OrderedDict[SessionKey, deque]" = OrderedDict()
        for request, market_value in pairs:
            key_queues.setdefault(request.key, deque()).append((request, market_value))
        served = 0
        while any(key_queues.values()):
            dispatched = False
            with self._lock:
                chunks: Dict[int, List[Tuple[QuoteRequest, float]]] = {}
                for key, queue in key_queues.items():
                    if not queue or key in self._moving:
                        continue
                    chunk = chunks.setdefault(self._routing.shard_of(key), [])
                    while queue and len(chunk) < window:
                        chunk.append(queue.popleft())
                if chunks:
                    served += sum(
                        self._gather(
                            [
                                (self._shards[shard], "replay", chunk)
                                for shard, chunk in chunks.items()
                            ]
                        )
                    )
                    dispatched = True
            if not dispatched:
                # Everything left is mid-move: wait for a migration to end.
                with self._moved:
                    self._moved.wait(timeout=0.05)
        return served

    # ------------------------------------------------------------------ #
    # Stats / persistence / lifecycle
    # ------------------------------------------------------------------ #

    def shard_stats(self) -> List[dict]:
        """Raw per-shard counters (service + registry + latency samples)."""
        with self._lock:
            alive = [h for h in self._shards if not h.dead]
            if not alive:
                raise ServingError("no live shard workers")
            return self._gather([(handle, "stats", None) for handle in alive])

    def stats(self) -> dict:
        """Aggregated counters across shards, with a merged latency summary.

        Includes a ``rebalance`` block (sessions moved, parked/replayed
        quote counts, quiesce-time percentiles) and a ``routing`` block
        (table version, hash divisor, live overrides) — both flow through
        the socket frontend's stats frame.
        """
        with self._lock:
            per_shard = self.shard_stats()
            samples: List[float] = []
            for entry in per_shard:
                samples.extend(entry.pop("latency_samples"))
            aggregate = {
                "shards": self.num_shards,
                "quotes_served": sum(e["quotes_served"] for e in per_shard),
                "drains": sum(e["drains"] for e in per_shard),
                "batched_proposals": sum(e["batched_proposals"] for e in per_shard),
                "feedback_applied": sum(e["feedback_applied"] for e in per_shard),
                "sessions_resident": sum(e["sessions_resident"] for e in per_shard),
                "registry": {
                    name: sum(e["registry"][name] for e in per_shard)
                    for name in per_shard[0]["registry"]
                },
                "latency": LatencySummary.from_seconds(samples).as_dict(),
                "rebalance": self.rebalance_stats.as_dict(),
                "routing": {
                    "version": self._routing.version,
                    "hash_shards": self._routing.hash_shards,
                    "overrides": len(self._routing.overrides),
                    "moving": len(self._moving),
                },
                "per_shard": per_shard,
            }
            return aggregate

    def persist_all(self) -> int:
        """Snapshot every resident session on every live shard."""
        with self._lock:
            alive = [h for h in self._shards if not h.dead]
            return sum(self._gather([(handle, "persist", None) for handle in alive]))

    def _reap(self, process, timeout: float) -> None:
        """join → terminate → kill escalation; never hangs past ~3×timeout."""
        process.join(timeout)
        if process.is_alive():
            process.terminate()
            process.join(timeout)
        if process.is_alive():
            process.kill()
            process.join(timeout)

    def _stop_handle(self, handle: _ShardHandle, timeout: float) -> None:
        try:
            handle.conn.send(("stop", None))
        except (BrokenPipeError, OSError):
            pass
        try:
            if handle.conn.poll(timeout):
                handle.conn.recv()
        except (EOFError, OSError):
            pass
        try:
            handle.conn.close()
        except OSError:
            pass
        self._reap(handle.process, timeout)

    def close(self, timeout: float = 5.0) -> None:
        """Stop every worker (idempotent); guaranteed to reap stragglers.

        The escalation ladder per worker is bounded: cooperative stop →
        ``join(timeout)`` → ``terminate()`` (SIGTERM) → ``kill()``
        (SIGKILL, cannot be ignored) — a worker wedged in a blocking pipe
        read or an infinite pricer call cannot leak past close.  The
        router lock is acquired with the same bound, so a thread stuck
        inside a wedged worker's roundtrip cannot make close hang either
        (killing the worker unwedges it).  ``_closed`` is latched first:
        repeated calls return immediately even if an earlier close raised.
        """
        if self._closed:
            return
        self._closed = True
        acquired = self._lock.acquire(timeout=timeout)
        try:
            for handle in self._shards:
                try:
                    handle.conn.send(("stop", None))
                except (BrokenPipeError, OSError):
                    pass
            for handle in self._shards:
                try:
                    if handle.conn.poll(timeout):
                        handle.conn.recv()
                except (EOFError, OSError):
                    pass
                try:
                    handle.conn.close()
                except OSError:
                    pass
                self._reap(handle.process, timeout)
        finally:
            if acquired:
                self._lock.release()

    def __enter__(self) -> "ShardedRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
