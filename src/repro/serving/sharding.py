"""Cross-process session sharding for the quote-serving subsystem.

:class:`ShardedRegistry` is a router in front of *N* worker processes, each
owning one :class:`~repro.serving.registry.PricerRegistry` plus one
:class:`~repro.serving.service.QuoteService`.  Session keys are hashed onto
shards with a stable (process-independent) SHA-1 hash, so a session's entire
lifetime — creation, every quote, every feedback event, its snapshot file —
lives on exactly one worker:

* **quote/feedback dispatch** travels over ``multiprocessing`` pipes, batched
  per shard (one message per touched shard per call, never one per request);
* **quote ids are globalised** by the router (``global = local * N + shard``)
  so responses from different shards never collide and a feedback event's id
  can be validated against its key's shard before crossing the pipe;
* **per-shard snapshot dirs** (``<snapshot_dir>/shard-<i>``) keep the
  checkpoint files of different workers disjoint while staying ordinary
  pricer checkpoints — a session rehydrates bit-identically on restart as
  long as the shard count (and therefore the key→shard map) is unchanged;
* **failure accounting crosses the process boundary**: a worker-side drain
  failure arrives as the same structured :class:`~repro.exceptions.
  ServingError` (lost / requeued quote ids, translated to global ids) the
  in-process service raises.

Because each session is pinned to one worker and the per-session protocol
(quote → feedback → next quote) is preserved by per-shard FIFO pipes, a
closed-loop replay through a sharded service is **bit-identical** to the
in-process service and to the offline engine — the serving equivalence
contract survives the process boundary (pinned by ``tests/serving/``).

The default start method is ``fork`` (factories may close over live models
and numpy arrays, shared copy-on-write); pass ``start_method="spawn"`` with
a picklable factory on platforms without fork.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import multiprocessing

from repro.exceptions import ServingError
from repro.serving.registry import PricerRegistry
from repro.serving.requests import FeedbackEvent, QuoteRequest, QuoteResponse, SessionKey
from repro.serving.service import MicroBatchConfig, QuoteService
from repro.utils.metrics import LatencySummary


def shard_of_key(key: SessionKey, num_shards: int) -> int:
    """The stable shard index of one session key.

    Derived from a SHA-1 digest of ``(app, segment)`` — not Python's salted
    ``hash()`` — so every process (router, workers, a restarted service)
    agrees on the placement.
    """
    raw = ("%s\x00%s" % (key.app, key.segment)).encode("utf-8")
    digest = hashlib.sha1(raw).digest()
    return int.from_bytes(digest[:8], "big") % num_shards


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #


def _shard_worker_main(
    conn,
    shard_index: int,
    factory,
    config,
    snapshot_dir,
    max_sessions,
    persist_every,
) -> None:
    """One shard's request loop: a registry + service behind a pipe.

    Commands are ``(op, payload)`` tuples; every command gets exactly one
    ``("ok", result)`` or ``("error", exception)`` reply, so the parent can
    pipeline sends across shards and collect replies in order.
    """
    registry = PricerRegistry(
        factory,
        snapshot_dir=snapshot_dir,
        max_sessions=max_sessions,
        persist_every=persist_every,
    )
    service = QuoteService(registry, config=config)
    while True:
        try:
            op, payload = conn.recv()
        except (EOFError, OSError):
            break
        try:
            if op == "submit":
                result = service.submit_many(payload)
            elif op == "poll":
                result = service.poll()
            elif op == "flush":
                result = service.flush()
            elif op == "quote":
                result = service.quote(payload)
            elif op == "feedback":
                service.feedback_batch(payload)
                result = len(payload)
            elif op == "feedback_many":
                result = service.feedback_many(payload)
            elif op == "replay":
                result = _replay_closed_loop_window(service, payload)
            elif op == "stats":
                result = {
                    "shard": shard_index,
                    "quotes_served": service.stats.quotes_served,
                    "drains": service.stats.drains,
                    "batched_proposals": service.stats.batched_proposals,
                    "feedback_applied": service.stats.feedback_applied,
                    "latency_samples": list(service.stats.latency.samples_seconds),
                    "registry": registry.stats.as_dict(),
                    "sessions_resident": registry.resident_count,
                }
            elif op == "persist":
                result = registry.flush()
            elif op == "stop":
                conn.send(("ok", None))
                break
            else:
                raise ServingError("unknown shard command %r" % (op,))
        except Exception as exc:  # noqa: BLE001 — every failure must cross the pipe
            try:
                conn.send(("error", exc))
            except Exception:
                conn.send(("error", ServingError(repr(exc))))
            continue
        conn.send(("ok", result))
    conn.close()


def _replay_closed_loop_window(service: QuoteService, pairs) -> int:
    """Serve a window of ``(request, market_value)`` pairs closed-loop.

    The shard-local half of the replay bench: one synchronous quote per
    request, the sale settled against the realised market value with the
    engine's scalar comparison, feedback applied before the next request of
    the same session (pairs arrive in round order per session, so the
    per-session protocol is exactly the offline engine's).
    """
    served = 0
    for request, market_value in pairs:
        response = service.quote(request)
        service.feedback(
            FeedbackEvent(
                key=request.key,
                quote_id=response.quote_id,
                accepted=response.sold_at(market_value),
            )
        )
        served += 1
    return served


# --------------------------------------------------------------------------- #
# Router side
# --------------------------------------------------------------------------- #


@dataclass
class _ShardHandle:
    """Parent-side view of one worker: its process, pipe, and queue depth.

    ``outstanding`` holds the *global* ids of router-submitted quotes that
    have not produced a response yet — an exact set, not a counter, so drain
    failures (whose lost ids may include quotes the router never submitted,
    e.g. a worker-side synchronous quote) cannot skew the accounting.
    """

    index: int
    process: Any
    conn: Any
    outstanding: set = field(default_factory=set)


class ShardedRegistry:
    """Hash-sharded quote service: N worker processes behind one router.

    Mirrors the :class:`~repro.serving.service.QuoteService` surface
    (``submit`` / ``poll`` / ``flush`` / ``quote`` / ``feedback`` /
    ``feedback_batch``) so the socket front end and the load generator drive
    either interchangeably.

    Parameters
    ----------
    factory:
        Session factory, as for :class:`PricerRegistry`.  With the default
        ``fork`` start method it may close over live objects; with
        ``spawn`` it must be picklable.
    num_shards:
        Worker process count (≥ 1).
    config:
        Micro-batch window applied inside every worker's service.
    snapshot_dir:
        Parent directory of the per-shard snapshot dirs
        (``shard-00``, ``shard-01``, ...); ``None`` disables persistence.
    max_sessions / persist_every:
        Per-shard registry knobs (capacity is per worker).
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` when
        available.
    """

    def __init__(
        self,
        factory,
        num_shards: int,
        config: Optional[MicroBatchConfig] = None,
        snapshot_dir: Optional[str] = None,
        max_sessions: Optional[int] = None,
        persist_every: int = 0,
        start_method: Optional[str] = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1, got %d" % num_shards)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        context = multiprocessing.get_context(start_method)
        self.num_shards = num_shards
        self._closed = False
        #: Responses collected while another shard's drain failed — returned
        #: by the next poll/flush so a partial failure never drops quotes.
        self._outbox: List[QuoteResponse] = []
        self._shards: List[_ShardHandle] = []
        for index in range(num_shards):
            shard_dir = None
            if snapshot_dir is not None:
                shard_dir = os.path.join(snapshot_dir, "shard-%02d" % index)
                os.makedirs(shard_dir, exist_ok=True)
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_shard_worker_main,
                args=(
                    child_conn,
                    index,
                    factory,
                    config,
                    shard_dir,
                    max_sessions,
                    persist_every,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._shards.append(_ShardHandle(index=index, process=process, conn=parent_conn))

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    def shard_of(self, key: SessionKey) -> int:
        """The shard index owning ``key``'s session."""
        return shard_of_key(key, self.num_shards)

    def _globalize(self, shard: int, local_id: int) -> int:
        return local_id * self.num_shards + shard

    def _localize(self, key: SessionKey, global_id: int) -> Tuple[int, int]:
        shard = self.shard_of(key)
        if global_id % self.num_shards != shard:
            raise ServingError(
                "quote id %d does not belong to session %s (shard %d)"
                % (global_id, key, shard)
            )
        return shard, global_id // self.num_shards

    def _translate_response(self, shard: int, response: QuoteResponse) -> QuoteResponse:
        response.quote_id = self._globalize(shard, response.quote_id)
        return response

    def _translate_error(self, shard: int, exc: Exception) -> Exception:
        if isinstance(exc, ServingError):
            exc.lost_quote_ids = [self._globalize(shard, q) for q in exc.lost_quote_ids]
            exc.requeued_quote_ids = [
                self._globalize(shard, q) for q in exc.requeued_quote_ids
            ]
            if exc.response is not None:
                self._translate_response(shard, exc.response)
        return exc

    # ------------------------------------------------------------------ #
    # Pipe plumbing
    # ------------------------------------------------------------------ #

    def _send(self, handle: _ShardHandle, op: str, payload) -> None:
        if self._closed:
            raise ServingError("sharded registry is closed")
        try:
            handle.conn.send((op, payload))
        except (BrokenPipeError, OSError) as exc:
            raise ServingError("shard %d worker is gone: %s" % (handle.index, exc))

    def _recv(self, handle: _ShardHandle):
        try:
            status, payload = handle.conn.recv()
        except (EOFError, OSError):
            raise ServingError("shard %d worker died mid-command" % handle.index)
        if status == "error":
            if isinstance(payload, Exception):
                raise self._translate_error(handle.index, payload)
            raise ServingError("shard %d failed: %r" % (handle.index, payload))
        return payload

    def _roundtrip(self, handle: _ShardHandle, op: str, payload=None):
        self._send(handle, op, payload)
        return self._recv(handle)

    def _gather(self, requests: Sequence[Tuple[_ShardHandle, str, Any]]) -> List:
        """Send every command first, then collect replies — shards overlap."""
        for handle, op, payload in requests:
            self._send(handle, op, payload)
        results = []
        first_error: Optional[Exception] = None
        for handle, _op, _payload in requests:
            try:
                results.append(self._recv(handle))
            except Exception as exc:  # keep draining the other pipes
                results.append(None)
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return results

    # ------------------------------------------------------------------ #
    # Quote path
    # ------------------------------------------------------------------ #

    def submit(self, request: QuoteRequest) -> int:
        """Enqueue one request on its key's shard; returns the global id."""
        return self.submit_many([request])[0]

    def submit_many(self, requests: Sequence[QuoteRequest]) -> List[int]:
        """Enqueue a batch, one pipe message per touched shard.

        Returns the global quote ids in input order; per-shard arrival order
        equals input order, so micro-batch grouping inside a worker behaves
        exactly as if the requests had been submitted directly.
        """
        by_shard: Dict[int, List[int]] = {}
        for position, request in enumerate(requests):
            by_shard.setdefault(self.shard_of(request.key), []).append(position)
        ids: List[int] = [0] * len(requests)
        for shard, positions in by_shard.items():
            self._send(
                self._shards[shard], "submit", [requests[p] for p in positions]
            )
        # Collect per shard so a dead shard cannot corrupt the queue-depth
        # accounting of the healthy ones: requests a healthy shard *did*
        # enqueue stay visible to poll()/flush() even when the call raises.
        first_error: Optional[Exception] = None
        for shard, positions in by_shard.items():
            handle = self._shards[shard]
            try:
                local_ids = self._recv(handle)
            except Exception as exc:
                if first_error is None:
                    first_error = exc
                continue
            for position, local_id in zip(positions, local_ids):
                global_id = self._globalize(shard, local_id)
                ids[position] = global_id
                handle.outstanding.add(global_id)
        if first_error is not None:
            raise first_error
        return ids

    def _forget_lost(self, handle: _ShardHandle, exc: Exception) -> None:
        """Drop a drain failure's lost quotes from the outstanding set.

        Only ids actually outstanding are discarded (the set is exact), so a
        lost worker-side synchronous quote can never eat another router
        quote's accounting.
        """
        if isinstance(exc, ServingError):
            for quote_id in exc.lost_quote_ids:
                handle.outstanding.discard(quote_id)

    def _collect(self, op: str, candidates: List[_ShardHandle]) -> List[QuoteResponse]:
        responses, self._outbox = self._outbox, []
        if not candidates:
            return responses
        for handle in candidates:
            self._send(handle, op, None)
        first_error: Optional[Exception] = None
        for handle in candidates:
            try:
                shard_responses = self._recv(handle)
            except Exception as exc:  # keep draining the other pipes
                # Lost quotes will never produce a response; keep the
                # queue-depth accounting honest so polls don't spin on them.
                self._forget_lost(handle, exc)
                if first_error is None:
                    first_error = exc
                continue
            for response in shard_responses:
                self._translate_response(handle.index, response)
                handle.outstanding.discard(response.quote_id)
                responses.append(response)
        if first_error is not None:
            # Healthy shards' responses survive the failing shard's error:
            # they are parked and returned by the next poll/flush.
            self._outbox = responses
            raise first_error
        return responses

    def poll(self) -> List[QuoteResponse]:
        """Poll every shard with queued work; returns ready responses."""
        return self._collect("poll", [h for h in self._shards if h.outstanding])

    def flush(self) -> List[QuoteResponse]:
        """Drain every shard with queued work unconditionally."""
        return self._collect("flush", [h for h in self._shards if h.outstanding])

    def quote(self, request: QuoteRequest) -> QuoteResponse:
        """Synchronous single-quote path on the owning shard."""
        handle = self._shards[self.shard_of(request.key)]
        try:
            response = self._roundtrip(handle, "quote", request)
        except ServingError as exc:
            # The drain inside the worker may have taken router-submitted
            # quotes down with it.
            self._forget_lost(handle, exc)
            raise
        return self._translate_response(handle.index, response)

    # ------------------------------------------------------------------ #
    # Feedback path
    # ------------------------------------------------------------------ #

    def feedback(self, event: FeedbackEvent) -> None:
        """Apply one outcome on its key's shard."""
        self.feedback_batch([event])

    def feedback_batch(self, events: Iterable[FeedbackEvent]) -> None:
        """Apply a window of outcomes, one pipe message per touched shard.

        Every event's global quote id is validated against its key's shard
        before dispatch — a mistyped key cannot settle another session's
        quote on the wrong worker.  Within one shard the service's all-or-
        nothing group validation applies; across shards the batch is applied
        per shard (no cross-process transaction), so a failing shard leaves
        the other shards' outcomes applied — the raised error names the
        failing session.
        """
        by_shard: Dict[int, List[FeedbackEvent]] = {}
        for event in events:
            shard, local_id = self._localize(event.key, event.quote_id)
            by_shard.setdefault(shard, []).append(
                FeedbackEvent(key=event.key, quote_id=local_id, accepted=event.accepted)
            )
        if not by_shard:
            return
        self._gather(
            [(self._shards[shard], "feedback", group) for shard, group in by_shard.items()]
        )

    def feedback_many(self, events: Iterable[FeedbackEvent]) -> List[Optional[Exception]]:
        """Apply a mixed window of outcomes with **per-event** results.

        The cross-process twin of :meth:`QuoteService.feedback_many`: events
        are routed to their keys' shards (one pipe message per touched
        shard, shards overlapped send-all-then-collect) and each shard
        returns per-event outcomes, re-aligned here with the input order.
        An event whose global quote id does not belong to its key's shard
        gets its :class:`ServingError` as the outcome without crossing any
        pipe; a dead shard fails only its own events.
        """
        events = list(events)
        outcomes: List[Optional[Exception]] = [None] * len(events)
        by_shard: Dict[int, List[int]] = {}
        local_events: Dict[int, List[FeedbackEvent]] = {}
        for index, event in enumerate(events):
            try:
                shard, local_id = self._localize(event.key, event.quote_id)
            except ServingError as exc:
                outcomes[index] = exc
                continue
            by_shard.setdefault(shard, []).append(index)
            local_events.setdefault(shard, []).append(
                FeedbackEvent(key=event.key, quote_id=local_id, accepted=event.accepted)
            )
        if not by_shard:
            return outcomes
        shards = list(by_shard)
        for shard in shards:
            self._send(self._shards[shard], "feedback_many", local_events[shard])
        for shard in shards:
            handle = self._shards[shard]
            try:
                shard_outcomes = self._recv(handle)
            except Exception as exc:  # keep draining the other pipes
                for index in by_shard[shard]:
                    outcomes[index] = exc
                continue
            for index, outcome in zip(by_shard[shard], shard_outcomes):
                if isinstance(outcome, Exception):
                    outcomes[index] = self._translate_error(handle.index, outcome)
        return outcomes

    # ------------------------------------------------------------------ #
    # Replay driver (the sharded load-generator path)
    # ------------------------------------------------------------------ #

    def replay_closed_loop(
        self,
        pairs: Iterable[Tuple[QuoteRequest, float]],
        window: int = 256,
    ) -> int:
        """Replay ``(request, market_value)`` pairs closed-loop across shards.

        Pairs are routed to their sessions' shards preserving order, cut into
        windows of ``window`` pairs, and each round of windows is dispatched
        to all busy shards *concurrently* (send-all-then-collect) — the
        shard-local loops run in parallel while per-session semantics stay
        exactly closed-loop (quote, settle, feedback, next round).  Returns
        the number of quotes served.
        """
        if window < 1:
            raise ValueError("window must be positive, got %d" % window)
        by_shard: Dict[int, List[Tuple[QuoteRequest, float]]] = {}
        for request, market_value in pairs:
            by_shard.setdefault(self.shard_of(request.key), []).append(
                (request, market_value)
            )
        served = 0
        cursors = {shard: 0 for shard in by_shard}
        while True:
            plan = []
            for shard, shard_pairs in by_shard.items():
                cursor = cursors[shard]
                if cursor >= len(shard_pairs):
                    continue
                chunk = shard_pairs[cursor : cursor + window]
                cursors[shard] = cursor + len(chunk)
                plan.append((self._shards[shard], "replay", chunk))
            if not plan:
                break
            served += sum(self._gather(plan))
        return served

    # ------------------------------------------------------------------ #
    # Stats / persistence / lifecycle
    # ------------------------------------------------------------------ #

    def shard_stats(self) -> List[dict]:
        """Raw per-shard counters (service + registry + latency samples)."""
        return self._gather([(handle, "stats", None) for handle in self._shards])

    def stats(self) -> dict:
        """Aggregated counters across shards, with a merged latency summary."""
        per_shard = self.shard_stats()
        samples: List[float] = []
        for entry in per_shard:
            samples.extend(entry.pop("latency_samples"))
        aggregate = {
            "shards": self.num_shards,
            "quotes_served": sum(e["quotes_served"] for e in per_shard),
            "drains": sum(e["drains"] for e in per_shard),
            "batched_proposals": sum(e["batched_proposals"] for e in per_shard),
            "feedback_applied": sum(e["feedback_applied"] for e in per_shard),
            "sessions_resident": sum(e["sessions_resident"] for e in per_shard),
            "registry": {
                name: sum(e["registry"][name] for e in per_shard)
                for name in per_shard[0]["registry"]
            },
            "latency": LatencySummary.from_seconds(samples).as_dict(),
            "per_shard": per_shard,
        }
        return aggregate

    def persist_all(self) -> int:
        """Snapshot every resident session on every shard."""
        return sum(self._gather([(handle, "persist", None) for handle in self._shards]))

    def close(self, timeout: float = 5.0) -> None:
        """Stop every worker (idempotent); terminates stragglers."""
        if self._closed:
            return
        for handle in self._shards:
            try:
                handle.conn.send(("stop", None))
            except (BrokenPipeError, OSError):
                pass
        for handle in self._shards:
            try:
                if handle.conn.poll(timeout):
                    handle.conn.recv()
            except (EOFError, OSError):
                pass
            handle.conn.close()
            handle.process.join(timeout)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout)
        self._closed = True

    def __enter__(self) -> "ShardedRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
