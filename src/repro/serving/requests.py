"""Wire-level records of the quote-serving subsystem.

A quote round-trip is three records:

1. :class:`QuoteRequest` — one arrival's link-space features and optional
   reserve, addressed to a pricing session via its :class:`SessionKey`;
2. :class:`QuoteResponse` — the posted price (link- and real-space) plus the
   decision flags the transcript records;
3. :class:`FeedbackEvent` — the consumer's accept/reject outcome, routed back
   to the same session by quote id.

All price quantities follow the engine's conventions: pricers reason in link
space, the response additionally carries the real posted price
``g(link_price)``, and ``None`` marks a skipped round (no price posted).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class SessionKey:
    """Identity of one pricing session: an application and a traffic segment.

    The paper's broker prices many concurrent query streams (one per data
    application / consumer segment); each stream is one session with its own
    pricer state.  ``(app, segment)`` is the registry key and the stem of the
    session's snapshot file name.
    """

    app: str
    segment: str

    def slug(self) -> str:
        """A filesystem-safe stem for snapshot file names."""
        import hashlib
        import re

        raw = "%s\x00%s" % (self.app, self.segment)
        digest = hashlib.sha1(raw.encode("utf-8")).hexdigest()[:10]
        safe = re.sub(r"[^A-Za-z0-9._=-]+", "-", "%s__%s" % (self.app, self.segment))
        return "%s-%s" % (safe[:60], digest)

    def __str__(self) -> str:
        return "%s/%s" % (self.app, self.segment)


@dataclass
class QuoteRequest:
    """One arrival asking for a posted price.

    ``features`` are link-space (already through the application's feature
    map, exactly what :meth:`~repro.core.base.PostedPriceMechanism.propose`
    consumes); ``reserve`` is the link-space reserve or ``None``.  The
    ``quote_id`` and ``enqueued_at`` fields are filled on the *service's
    private copy* at submission (the caller's object is never mutated — the
    assigned id is the return value of ``submit``), so one request object can
    safely be resubmitted as a fresh quote.
    """

    key: SessionKey
    features: np.ndarray
    reserve: Optional[float] = None
    metadata: dict = field(default_factory=dict)
    quote_id: Optional[int] = None
    enqueued_at: float = 0.0


@dataclass
class QuoteResponse:
    """The service's answer to one :class:`QuoteRequest`.

    ``link_price`` / ``posted_price`` are ``None`` when the session's pricer
    skipped the round (certain no-deal under the reserve constraint).
    ``latency_seconds`` measures enqueue → response on the service clock, so
    it includes micro-batch queueing delay — the quantity the serving bench
    reports as p50/p99.
    """

    quote_id: int
    key: SessionKey
    link_price: Optional[float]
    posted_price: Optional[float]
    exploratory: bool
    skipped: bool
    round_index: int
    latency_seconds: float

    @property
    def posted(self) -> bool:
        """Whether a price was actually posted."""
        return not self.skipped and self.posted_price is not None

    def sold_at(self, market_value: float) -> bool:
        """Whether this quote sells against a realised market value.

        The one definition of the sale — the engine's scalar comparison
        ``posted_price <= market_value`` on a posted round — shared by the
        closed-loop drivers, the sharded replay, and the load generator (the
        bit-identical equivalence contract depends on every settle site
        agreeing).
        """
        return self.posted and self.posted_price <= market_value


@dataclass(frozen=True)
class FeedbackEvent:
    """Accept/reject outcome of one quote, routed back by quote id."""

    key: SessionKey
    quote_id: int
    accepted: bool
