#!/usr/bin/env python3
"""Application 2: accommodation rental pricing under the log-linear model.

Builds synthetic Airbnb-style listings, learns the log-linear market value
model by ordinary least squares on log prices, and prices the listing stream
with and without the reserve price constraint at several reserve/market log
ratios — the setup behind Fig. 5(b).  A warm-started variant (knowledge set
initialised from historical transactions) is also shown.

Run:  python examples/accommodation_rental.py [listing_count]
"""

import sys

from repro.apps import AccommodationConfig, build_accommodation_environment
from repro.apps.common import run_versions


def run_for_ratio(listing_count: int, ratio: float, warm_start_count: int = 0) -> None:
    """Price the listing stream at one reserve/market log ratio."""
    config = AccommodationConfig(
        listing_count=listing_count,
        reserve_log_ratio=ratio,
        warm_start_count=warm_start_count,
        seed=99,
    )
    environment = build_accommodation_environment(config)
    results = run_versions(
        environment, versions=("pure version", "with reserve price"), include_risk_averse=True
    )
    tag = " (warm start, %d historical records)" % warm_start_count if warm_start_count else ""
    print(
        "reserve/market log ratio r = %.1f%s   [OLS test MSE %.3f]"
        % (ratio, tag, environment.metadata["test_mse"])
    )
    for name, result in results.items():
        print(
            "  %-25s regret ratio %6.2f%%   revenue %12.0f   sale rate %5.1f%%"
            % (
                name,
                100.0 * result.regret_ratio,
                result.cumulative_revenue,
                100.0 * result.sale_rate(),
            )
        )


def main() -> None:
    listing_count = int(sys.argv[1]) if len(sys.argv) > 1 else 8_000
    print("Accommodation rental pricing over %d synthetic listings (n = 55)\n" % listing_count)
    for ratio in (0.4, 0.6, 0.8):
        run_for_ratio(listing_count, ratio)
        print()
    print("Warm-started broker (knowledge set fitted on historical transactions):")
    run_for_ratio(listing_count, 0.6, warm_start_count=2_000)


if __name__ == "__main__":
    main()
