#!/usr/bin/env python
"""Quickstart: quote over the socket front end against a sharded backend.

Starts a 2-shard :class:`~repro.serving.sharding.ShardedRegistry` (each
worker process owns its own pricer registry + micro-batching quote service),
exposes it through the asyncio :class:`~repro.serving.frontend.QuoteFrontend`
on a unix socket, and drives a short closed-loop session from a plain
blocking :class:`~repro.serving.frontend.QuoteSocketClient`: quote → settle
against the realised market value → feedback → next round.

The protocol on the wire is length-prefixed JSON (4-byte big-endian length +
UTF-8 body) — run ``nc -U /tmp/quotes.sock`` and type nothing to see how
little magic there is.  Everything here is deterministic: the replay market
comes from the golden-market recipe, so re-running prints identical prices.

Usage::

    PYTHONPATH=src python examples/serve_socket.py
"""

from __future__ import annotations

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.core.pricing import make_pricer
from repro.engine import stream_rounds
from repro.serving import (
    MicroBatchConfig,
    QuoteSocketClient,
    SessionKey,
    ShardedRegistry,
    dataset_replay_market,
    start_frontend_thread,
)

ROUNDS = 24
DIMENSION_RADIUS = 3.0


def main() -> int:
    # A deterministic replay market over the loans dataset loader.
    materialized, model = dataset_replay_market("loans", rounds=ROUNDS, seed=11)
    dimension = materialized.mapped_features.shape[1]

    def factory(key: SessionKey):
        return model, make_pricer(dimension=dimension, radius=DIMENSION_RADIUS, epsilon=0.1)

    socket_path = os.path.join(tempfile.mkdtemp(prefix="repro-serving-"), "quotes.sock")
    print("starting 2-shard backend + asyncio front end on %s" % socket_path)
    with ShardedRegistry(
        factory,
        num_shards=2,
        config=MicroBatchConfig(max_batch=1, max_wait_seconds=0.0),
    ) as backend:
        handle = start_frontend_thread(backend, unix_path=socket_path)
        try:
            with QuoteSocketClient(unix_path=socket_path) as client:
                client.ping()
                keys = [SessionKey("loans", "prime"), SessionKey("loans", "subprime")]
                for key in keys:
                    print(
                        "session %s -> shard %d" % (key, backend.shard_of(key))
                    )
                revenue = {key: 0.0 for key in keys}
                for round_ in stream_rounds(materialized):
                    for key in keys:
                        result = client.quote(
                            key, round_.features, reserve=round_.reserve
                        )
                        posted = result["posted_price"]
                        sold = posted is not None and posted <= round_.market_value
                        client.feedback(key, result["quote_id"], sold)
                        if sold:
                            revenue[key] += posted
                        if round_.index < 3:
                            print(
                                "  round %2d  %-16s quote_id=%-3d posted=%s sold=%s"
                                % (
                                    round_.index,
                                    key.segment,
                                    result["quote_id"],
                                    "skip" if posted is None else "%.4f" % posted,
                                    sold,
                                )
                            )
                stats = client.stats()
                print(
                    "served %d quotes over the socket (%d feedback events, "
                    "%d sessions resident across %d shards)"
                    % (
                        stats["quotes_served"],
                        stats["feedback_applied"],
                        stats["sessions_resident"],
                        stats["shards"],
                    )
                )
                for key in keys:
                    print("  revenue %-18s %.4f" % (key, revenue[key]))
        finally:
            handle.stop()
    print("done.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
