#!/usr/bin/env python3
"""Application 3: ad impression pricing under the logistic (CTR) model.

Trains a sparse CTR model with FTRL-Proximal over hashing-trick features of a
synthetic click log, then prices a fresh impression stream by predicted CTR
with the pure version of the ellipsoid mechanism, in both the sparse case
(all hashed features) and the dense case (support of the learned weights
only) — the setup behind Fig. 5(c).

Run:  python examples/ad_impression_pricing.py [impressions] [hash_dimension]
"""

import sys

from repro.apps import ImpressionConfig, build_impression_environment
from repro.apps.common import run_versions


def run_case(impressions: int, dimension: int, dense: bool) -> None:
    """Price one impression stream in the sparse or dense case."""
    config = ImpressionConfig(
        impression_count=impressions,
        training_count=impressions,
        dimension=dimension,
        dense=dense,
        seed=7,
    )
    environment = build_impression_environment(config)
    result = run_versions(environment, versions=("pure version",))["pure version"]
    print(
        "  %-6s case: pricing dimension %4d   non-zero CTR weights %3d   "
        "holdout log loss %.3f   regret ratio %6.2f%%   sale rate %5.1f%%"
        % (
            "dense" if dense else "sparse",
            environment.dimension,
            environment.metadata["nonzero_weights"],
            environment.metadata["holdout_log_loss"],
            100.0 * result.regret_ratio,
            100.0 * result.sale_rate(),
        )
    )


def main() -> None:
    impressions = int(sys.argv[1]) if len(sys.argv) > 1 else 8_000
    dimension = int(sys.argv[2]) if len(sys.argv) > 2 else 128
    print(
        "Impression pricing over %d synthetic ad impressions (hashing modulus %d)"
        % (impressions, dimension)
    )
    for dense in (False, True):
        run_case(impressions, dimension, dense)


if __name__ == "__main__":
    main()
