#!/usr/bin/env python3
"""Section IV-B extension: pricing loan applications under the log-log model.

The financial institution (broker) quotes an interest rate (posted price) to
each arriving borrower (consumer).  The borrower accepts any rate at or below
her private willingness to pay, the institution's funding cost acts as the
reserve rate, and the willingness to pay follows a log-log model of the
applicant's attributes (credit score, income, amount, debt ratio, employment).

The example learns the log-log coefficients from historical accepted rates by
OLS on log-transformed features, then prices a fresh applicant stream with the
ellipsoid mechanism and compares it against the risk-averse baseline that
always quotes the funding cost.

Run:  python examples/loan_application_pricing.py [applications]
"""

import sys

import numpy as np

from repro.core.baselines import RiskAversePricer
from repro.core.models import LogLogModel
from repro.core.pricing import EllipsoidPricer, PricerConfig
from repro.core.simulation import MarketSimulator, QueryArrival, compare_pricers
from repro.datasets.loans import generate_loans
from repro.learning.linear_regression import LinearRegression, train_test_split
from repro.learning.metrics import mean_squared_error

FUNDING_COST_FRACTION = 0.55  # reserve rate as a fraction of the borrower's rate (log space)


def learn_rate_model(history):
    """Fit the log-log interest rate model on historical accepted rates."""
    log_features = np.log(history.feature_matrix())
    log_rates = np.log(history.interest_rates())
    train_x, test_x, train_y, test_y = train_test_split(log_features, log_rates, 0.2, seed=1)
    regression = LinearRegression(fit_intercept=False, ridge=1e-8).fit(train_x, train_y)
    mse = mean_squared_error(test_y, regression.predict(test_x))
    return regression.weight_vector(include_intercept=False), mse


def main() -> None:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 6_000
    history = generate_loans(count=count, seed=3)
    theta, test_mse = learn_rate_model(history)
    print(
        "Learned log-log rate model over %d historical loans (held-out MSE on log rates: %.4f)"
        % (count, test_mse)
    )

    model = LogLogModel(theta)
    stream = generate_loans(count=count, seed=4)
    arrivals = []
    for application in stream:
        features = application.feature_vector()
        willingness = model.value(features)
        reserve_rate = willingness**FUNDING_COST_FRACTION
        arrivals.append(QueryArrival(features=features, reserve_value=reserve_rate, noise=0.0))

    dimension = len(theta)
    pricer = EllipsoidPricer(
        PricerConfig(
            dimension=dimension,
            radius=1.25 * float(np.linalg.norm(theta)),
            epsilon=0.05,
            use_reserve=True,
        )
    )
    results = compare_pricers(model, [pricer, RiskAversePricer()], arrivals)

    print("\nPricing %d new applications (rates in %%):" % len(arrivals))
    for result in results:
        stats = result.summary_statistics()
        print(
            "  %-28s regret ratio %6.2f%%   mean quoted rate %6.2f%%   "
            "mean borrower value %6.2f%%   acceptance rate %5.1f%%"
            % (
                result.pricer_name,
                100.0 * result.regret_ratio,
                stats["posted_price"][0],
                stats["market_value"][0],
                100.0 * stats["sale_rate"],
            )
        )


if __name__ == "__main__":
    main()
