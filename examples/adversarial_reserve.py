#!/usr/bin/env python3
"""Lemma 8 demo: why conservative prices must not refine the knowledge set.

Plays the paper's adversarial query sequence (Fig. 6) against the pricer with
and without the ``allow_conservative_cuts`` ablation switch and prints the
resulting cumulative regrets: forbidding conservative-price cuts keeps the
regret tiny, allowing them lets the adversary blow it up to Ω(T).

Run:  python examples/adversarial_reserve.py [rounds]
"""

import sys

from repro.experiments import run_adversarial_example


def main() -> None:
    rounds = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000
    print("Lemma 8 adversarial game over %d rounds (n = 2)\n" % rounds)
    results = run_adversarial_example(rounds=rounds)
    for result in results.values():
        print("  " + result.format())
    forbidden = results["forbidden"].cumulative_regret
    allowed = results["allowed"].cumulative_regret
    if forbidden > 0:
        print(
            "\nAllowing conservative-price cuts multiplies the regret by %.0fx."
            % (allowed / forbidden)
        )


if __name__ == "__main__":
    main()
