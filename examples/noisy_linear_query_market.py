#!/usr/bin/env python3
"""Application 1: a personal data market trading noisy linear queries.

Builds the full substrate — synthetic raters as data owners, tanh compensation
contracts, Laplace-mechanism privacy leakage, compensation-profile features —
and runs the four algorithm versions plus the risk-averse baseline over the
same query stream (the setup behind Fig. 4 / Fig. 5(a) / Table I).

It also demonstrates the broker-level API (``repro.market.DataBroker``) on a
short interactive stream, showing per-trade revenue and compensation flows.

Run:  python examples/noisy_linear_query_market.py [rounds] [dimension]
"""

import sys

import numpy as np

from repro.apps import NoisyLinearQueryConfig, run_noisy_query_experiment
from repro.core.pricing import PricerConfig, make_pricer
from repro.datasets import generate_ratings
from repro.market import (
    CompensationFeatureExtractor,
    DataBroker,
    OwnerPopulation,
    QueryGenerator,
    ThresholdConsumer,
)


def run_full_experiment(rounds: int, dimension: int) -> None:
    """The Fig. 4-style comparison of the four algorithm versions."""
    config = NoisyLinearQueryConfig(
        dimension=dimension, rounds=rounds, owner_count=300, delta=0.01, seed=2024
    )
    print(
        "Noisy linear query pricing: n = %d, T = %d, epsilon = %.4g"
        % (dimension, rounds, config.resolved_epsilon())
    )
    results = run_noisy_query_experiment(config, include_risk_averse=True)
    for name, result in results.items():
        stats = result.summary_statistics()
        print(
            "  %-38s regret ratio %6.2f%%   cumulative regret %10.2f   "
            "mean posted price %6.3f   sale rate %5.1f%%"
            % (
                name,
                100.0 * result.regret_ratio,
                result.cumulative_regret,
                stats["posted_price"][0],
                100.0 * stats["sale_rate"],
            )
        )


def run_broker_walkthrough() -> None:
    """A short walk through the broker API: ten trades, printed one by one."""
    print("\nBroker walkthrough (10 trades)")
    ratings = generate_ratings(user_count=200, item_count=60, seed=1)
    owners = OwnerPopulation.from_records(ratings.owner_records("mean_rating"), seed=1)

    dimension = 10
    pricer = make_pricer(
        dimension=dimension,
        radius=2.0 * np.sqrt(dimension),
        epsilon=PricerConfig.theoretical_epsilon(dimension, 10),
        use_reserve=True,
    )
    extractor = CompensationFeatureExtractor(dimension=dimension)
    broker = DataBroker(owners, pricer, extractor, seed=3)

    # The consumers' private valuation: a fixed positive weighting of the features.
    rng = np.random.default_rng(5)
    weights = np.abs(rng.standard_normal(dimension))
    weights *= np.sqrt(2 * dimension) / np.linalg.norm(weights)
    consumer = ThresholdConsumer(lambda features: float(features @ weights))

    generator = QueryGenerator(owner_count=len(owners), seed=7)
    for _ in range(10):
        query = generator.generate()
        record = broker.trade(query, consumer)
        outcome = "sold" if record.sold else "no deal"
        price = "%.3f" % record.posted_price if record.posted_price is not None else "   -  "
        print(
            "  query %2d: reserve %.3f  posted %s  %-7s  broker profit so far %.3f"
            % (record.query_id, record.reserve_price, price, outcome, broker.cumulative_profit)
        )


def main() -> None:
    rounds = int(sys.argv[1]) if len(sys.argv) > 1 else 5_000
    dimension = int(sys.argv[2]) if len(sys.argv) > 2 else 20
    run_full_experiment(rounds, dimension)
    run_broker_walkthrough()


if __name__ == "__main__":
    main()
