#!/usr/bin/env python3
"""Quickstart: price a stream of queries with the ellipsoid posted price mechanism.

This example builds a tiny linear market by hand (no dataset substrate), runs
the four algorithm versions of the paper over the same arrival sequence, and
prints their cumulative regrets and regret ratios — the core loop behind
Fig. 4.  It also plots (as text) the single-round regret function of Fig. 1.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    GaussianNoise,
    LinearModel,
    PricerConfig,
    QueryArrival,
    compare_pricers,
    make_pricer,
    single_round_regret_curve,
)

DIMENSION = 10
ROUNDS = 3_000
SEED = 42


def build_market(rng: np.random.Generator):
    """A hand-rolled linear market: non-negative features, reserve = 0.8 × Σx."""
    theta = np.abs(rng.standard_normal(DIMENSION))
    theta *= np.sqrt(2 * DIMENSION) / np.linalg.norm(theta)
    model = LinearModel(theta)

    noise = GaussianNoise(sigma=0.002)
    arrivals = []
    for _ in range(ROUNDS):
        features = np.abs(rng.standard_normal(DIMENSION))
        features /= np.linalg.norm(features)
        arrivals.append(
            QueryArrival(
                features=features,
                reserve_value=0.8 * float(np.sum(features)),
                noise=float(noise.sample(rng)),
            )
        )
    return model, arrivals


def main() -> None:
    rng = np.random.default_rng(SEED)
    model, arrivals = build_market(rng)

    radius = 2.0 * np.sqrt(DIMENSION)
    epsilon = PricerConfig.theoretical_epsilon(DIMENSION, ROUNDS, delta=0.01)

    pricers = [
        make_pricer(DIMENSION, radius, epsilon, delta=0.0, use_reserve=False),  # pure version
        make_pricer(DIMENSION, radius, epsilon, delta=0.01, use_reserve=False),  # with uncertainty
        make_pricer(DIMENSION, radius, epsilon, delta=0.0, use_reserve=True),  # with reserve price
        make_pricer(DIMENSION, radius, epsilon, delta=0.01, use_reserve=True),  # reserve + uncertainty
    ]

    print("Fig. 1 — single-round regret as a function of the posted price")
    market_value, reserve = 10.0, 6.0
    prices = np.linspace(0.0, 14.0, 8)
    regrets = single_round_regret_curve(market_value, reserve, prices)
    for price, regret in zip(prices, regrets):
        bar = "#" * int(round(regret))
        print("  posted price %5.2f -> regret %5.2f  %s" % (price, regret, bar))
    print()

    print("Four algorithm versions over the same %d-round market (n = %d)" % (ROUNDS, DIMENSION))
    results = compare_pricers(model, pricers, arrivals)
    for result in results:
        print(
            "  %-38s cumulative regret %9.2f   regret ratio %6.2f%%   sale rate %5.1f%%"
            % (
                result.pricer_name,
                result.cumulative_regret,
                100.0 * result.regret_ratio,
                100.0 * result.sale_rate(),
            )
        )


if __name__ == "__main__":
    main()
